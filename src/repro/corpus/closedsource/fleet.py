"""The remaining closed-source corpus apps, derived from their Table 1 rows.

Each row gives, per HTTP method, the triple (Extractocol / manual fuzzing /
automatic fuzzing).  The translator decomposes the triples into endpoint
classes:

* ``shared``  = min(E, M)   — endpoints both static analysis and a human see;
  of those, A are automation-reachable, the rest sit behind login walls or
  custom UI;
* ``E - shared`` — static-only endpoints: timers, server pushes and
  side-effect actions no fuzzer may trigger;
* ``M - E``   — intent-fed, multi-hop-async endpoints (ad/analytics
  libraries): dynamic traffic shows them, static analysis degrades them to
  wildcards (§5.1's discussion of Lucktastic's ad libraries).

Endpoint bodies/responses are synthesised so the query-string/JSON column
targets and the pair counts land near the row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...apk.model import TriggerKind
from ..generator import GenApp, GenEndpoint

E = GenEndpoint


@dataclass(frozen=True)
class Row:
    key: str
    name: str
    host: str
    #: per-method (extractocol, manual, auto)
    get: tuple[int, int, int] = (0, 0, 0)
    post: tuple[int, int, int] = (0, 0, 0)
    put: tuple[int, int, int] = (0, 0, 0)
    delete: tuple[int, int, int] = (0, 0, 0)
    #: Table 1 body/response columns (Extractocol values)
    query: int = 0
    json: int = 0
    pairs: int = 0
    #: the whole app sits behind a login wall (auto fuzzing gets nothing)
    login_wall: bool = False
    protocol: str = "HTTPS"


# Table 1, closed-source block (excluding TED and KAYAK, hand-written).
ROWS: tuple[Row, ...] = (
    Row("fivemiles", "5miles", "api.5milesapp.com",
        get=(24, 25, 0), post=(51, 12, 0), query=16, json=16, pairs=71,
        login_wall=True),
    Row("acapp", "AC App for Android", "api.acapp.example",
        get=(9, 9, 7), post=(15, 15, 5), query=15, json=23, pairs=23,
        protocol="HTTP(S)"),
    Row("aol", "AOL: Mail, News & Video", "api.aol.com",
        get=(9, 9, 6), query=0, json=9, pairs=9, protocol="HTTP"),
    Row("accuweather", "AccuWeather", "api.accuweather.com",
        get=(15, 15, 0), post=(3, 3, 0), query=3, json=16, pairs=16,
        login_wall=True, protocol="HTTP"),
    Row("buzzfeed", "Buzzfeed", "api.buzzfeed.com",
        get=(16, 5, 5), post=(12, 5, 1), query=12, json=6, pairs=27,
        protocol="HTTP(S)"),
    Row("flipboard", "Flipboard", "fbprod.flipboard.com",
        get=(23, 24, 0), post=(41, 13, 0), query=28, json=8, pairs=63,
        login_wall=True),
    Row("geek", "GEEK", "api.geek.com",
        get=(0, 1, 0), post=(97, 48, 18), query=41, json=11, pairs=97),
    Row("letgo", "Letgo", "api.letgo.com",
        get=(38, 32, 10), post=(10, 14, 2), put=(2, 2, 0), delete=(3, 0, 0),
        query=20, json=18, pairs=40),
    Row("linkedin", "LinkedIn", "api.linkedin.com",
        get=(38, 42, 16), post=(49, 17, 8), put=(0, 3, 0),
        query=46, json=47, pairs=85),
    Row("lucktastic", "Lucktastic", "api.lucktastic.com",
        get=(16, 2, 0), post=(9, 15, 0), put=(2, 0, 0), delete=(4, 0, 0),
        query=5, json=19, pairs=31, login_wall=True),
    Row("musicdownloader", "MusicDownloader", "api.musicdl.example",
        get=(3, 10, 0), post=(0, 1, 0), query=0, json=4, pairs=2,
        login_wall=True),
    Row("offerup", "Offerup", "api.offerup.com",
        get=(33, 20, 0), post=(23, 21, 0), put=(8, 1, 0), delete=(3, 0, 0),
        query=12, json=25, pairs=63, login_wall=True),
    Row("pandora", "Pandora Radio", "tuner.pandora.com",
        get=(7, 0, 0), post=(53, 20, 2), query=53, json=26, pairs=60,
        protocol="HTTP(S)"),
    Row("pinterest", "Pinterest", "api.pinterest.com",
        get=(60, 62, 26), post=(36, 19, 16), put=(32, 8, 3),
        delete=(20, 10, 2), query=88, json=148, pairs=148),
    Row("tophatter", "Tophatter", "api.tophatter.com",
        get=(33, 24, 0), post=(32, 14, 0), put=(1, 0, 0), delete=(4, 1, 0),
        query=18, json=32, pairs=62, login_wall=True),
    Row("tumblr", "Tumblr", "api.tumblr.com",
        get=(12, 13, 15), post=(8, 5, 5), delete=(1, 1, 0),
        query=5, json=14, pairs=20),
    Row("watchespn", "WatchESPN", "espn.go.com",
        get=(33, 33, 17), query=0, json=32, pairs=32, protocol="HTTP"),
    Row("wishlocal", "Wish Local", "api.wish.com",
        get=(0, 1, 0), post=(106, 48, 21), query=15, json=28, pairs=106),
)

_PATH_WORDS = (
    "feed", "profile", "items", "search", "detail", "comments", "likes",
    "follow", "notifications", "messages", "upload", "settings", "friends",
    "categories", "trending", "nearby", "history", "recommend", "tags",
    "stories", "orders", "cart", "offers", "reviews", "media", "boards",
    "pins", "collections", "sessions", "devices", "alerts", "topics",
)


def _payload(name: str, rich: bool) -> tuple[dict, tuple[str, ...]]:
    """A response body plus the subset of keys the app reads (~60%)."""
    payload = {
        "status": "ok",
        f"{name}_id": f"id-{abs(hash(name)) % 10_000}",
        "permalink": f"https://cdn.service.example/{name}/detail/page?ref=app",
        "cursor": f"cursor-{name}-0001",
        "ts": 1480000000,
        # keys the app never reads — the paper's dynamically generated /
        # uninspected response content (Table 2's Rn share)
        "tracking_meta": {"impression_id": f"imp-{abs(hash(name)) % 99999}",
                          "ab_bucket": "variant-b", "region": "us-west"},
        "etag": f"W/\"{abs(hash(name)) % 10**8:08x}\"",
    }
    reads: tuple[str, ...] = (f"{name}_id", "cursor", "permalink")
    if rich:
        payload[f"{name}_tag"] = "featured"
        reads = (f"{name}_id", "cursor", "permalink", f"{name}_tag")
    return payload, reads


def _endpoints_for(row: Row) -> list[GenEndpoint]:
    out: list[GenEndpoint] = []
    json_budget = row.json
    query_budget = row.query
    pair_budget = row.pairs
    login_needed = row.login_wall or any(
        t[0] > t[2] for t in (row.get, row.post, row.put, row.delete)
    )
    login_emitted = False
    idx = 0

    def next_path(method: str) -> str:
        nonlocal idx
        word = _PATH_WORDS[idx % len(_PATH_WORDS)]
        version = idx // len(_PATH_WORDS) + 1
        idx += 1
        return f"/v{version}/{word}/{method.lower()}{idx}"

    for method, (e_count, m_count, a_count) in (
        ("GET", row.get), ("POST", row.post), ("PUT", row.put),
        ("DELETE", row.delete),
    ):
        shared = min(e_count, m_count)
        auto_n = min(a_count, shared) if not row.login_wall else 0
        e_only = max(0, e_count - shared)
        m_only = max(0, m_count - e_count)
        auto_extra = max(0, a_count - auto_n) if not row.login_wall else 0

        for i in range(shared):
            if method == "POST" and login_needed and not login_emitted:
                out.append(E(
                    name="login", method="POST", path="/v1/auth/login",
                    body=(("user", "input"), ("passwd", "input")),
                    body_format="form" if query_budget > 0 else "json",
                    response={"token": f"tok-{row.key}", "uid": "u-1"},
                    reads=("token",), store={"token": "token"},
                    custom_ui=row.login_wall,
                ))
                if query_budget > 0:
                    query_budget -= 1
                else:
                    json_budget -= 1
                json_budget -= 1  # the token response
                pair_budget -= 1
                login_emitted = True
                continue
            nonlocal_name = f"{method.lower()}_{idx}"
            kwargs: dict = {}
            responded = False
            # body assignment: form bodies first (the query-string column),
            # then JSON bodies paired with JSON responses so the JSON column
            # counts each endpoint once
            if method in ("POST", "PUT", "DELETE"):
                if query_budget > 0:
                    kwargs["body"] = ((f"q_{nonlocal_name}", "input"),
                                      ("ts", "clock"), ("sig", "device"))
                    kwargs["body_format"] = "form"
                    query_budget -= 1
                elif json_budget > 0 and pair_budget > 0:
                    kwargs["body"] = ((f"data_{nonlocal_name}", "input"),
                                      ("client_ts", "clock"))
                    kwargs["body_format"] = "json"
                    payload, reads = _payload(nonlocal_name, rich=i % 3 == 0)
                    kwargs["response"] = payload
                    kwargs["reads"] = reads
                    json_budget -= 1
                    pair_budget -= 1
                    responded = True
            if not responded:
                if pair_budget > 0 and json_budget > 0:
                    payload, reads = _payload(nonlocal_name, rich=i % 3 == 0)
                    kwargs["response"] = payload
                    kwargs["reads"] = reads
                    pair_budget -= 1
                    json_budget -= 1
                elif pair_budget > 0:
                    kwargs["display_text"] = True
                    pair_budget -= 1
            gated = i >= auto_n
            out.append(E(
                name=nonlocal_name, method=method, path=next_path(method),
                headers=(("Authorization", "field:token"),) if login_emitted else (),
                requires_login=gated and login_emitted,
                custom_ui=(gated and not login_emitted) or row.login_wall,
                trigger=TriggerKind.UI,
                **kwargs,
            ))

        for i in range(e_only):
            name = f"{method.lower()}_static_{idx}"
            kwargs = {}
            if method in ("POST", "PUT", "DELETE") and query_budget > 0:
                kwargs["body"] = ((f"q_{name}", "device"), ("ts", "clock"))
                kwargs["body_format"] = "form"
                query_budget -= 1
            if pair_budget > 0 and json_budget > 0:
                payload, reads = _payload(name, rich=True)
                kwargs["response"] = payload
                kwargs["reads"] = reads
                pair_budget -= 1
                json_budget -= 1
            elif pair_budget > 0:
                kwargs["display_text"] = True
                pair_budget -= 1
            if i % 2 == 0:
                kwargs["trigger"] = TriggerKind.TIMER
            else:
                kwargs["side_effect"] = True
            out.append(E(name=name, method=method, path=next_path(method),
                         **kwargs))

        for i in range(m_only):
            out.append(E(
                name=f"{method.lower()}_ad_{idx}",
                method=method,
                path=f"/ads/{method.lower()}/{idx}",
                via_intent=True,
                custom_ui=i >= auto_extra,
            ))
            idx += 1
    return out


#: transport diversity across the fleet — these apps are built on Volley
#: or HttpURLConnection instead of Apache HttpClient, exercising the
#: listener-callback and connection-style demarcation points corpus-wide.
_TRANSPORTS = {"aol": "volley", "watchespn": "urlconn"}


def fleet_app(row: Row) -> GenApp:
    return GenApp(
        key=row.key,
        name=row.name,
        kind="closed",
        package=f"com.{row.key}.android",
        host=row.host,
        https="HTTPS" in row.protocol,
        protocol=row.protocol,
        endpoints=_endpoints_for(row),
        transport=_TRANSPORTS.get(row.key, "apache"),
        filler_methods=30,
        notes=f"Derived from the {row.name} row of Table 1.",
    )


def all_fleet_apps() -> list[GenApp]:
    return [fleet_app(row) for row in ROWS]


__all__ = ["ROWS", "Row", "all_fleet_apps", "fleet_app"]
