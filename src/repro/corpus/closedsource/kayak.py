"""Kayak — the §5.3 reverse-engineering case study.

Hand-written: the three Table 6 signatures (`/k/authajax` registration,
`/api/search/V8/flight/start`, `/api/search/V8/flight/poll`) including the
app-specific ``User-Agent: kayakandroidphone/8.1`` header Kayak uses for
access control.  The remaining Table 5 API surface (43 APIs over 8 URI
prefixes) is generated, and an embedded advertising library hits its own
host — excluded when the analysis is scoped to ``com.kayak`` classes.
"""

from __future__ import annotations

from ...apk.model import TriggerKind
from ...runtime.httpstack import HttpResponse
from ..base import EndpointTruth
from ..generator import GenApp, GenEndpoint

E = GenEndpoint

USER_AGENT = "kayakandroidphone/8.1"
HOST = "www.kayak.com"


def _build(emitter) -> None:
    cb = emitter.cb
    cls = emitter.main_cls
    cb.field("mSid", "java.lang.String")
    cb.field("mSearchId", "java.lang.String")

    def client_of(m):
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        return client

    # -- /k/authajax: session registration (Table 6 row 1) ---------------------
    m1 = cb.method("registerSession")
    pairs = m1.new("java.util.ArrayList")
    uuid = m1.scall("java.util.UUID", "randomUUID", [],
                    returns="java.util.UUID")
    uuid_s = m1.vcall(uuid, "toString", [], returns="java.lang.String")
    device_hash = m1.scall("android.provider.Settings$Secure", "getString",
                           ["android_id"], returns="java.lang.String")
    for key, value in (
        ("action", "registerandroid"),
        ("uuid", uuid_s),
        ("hash", device_hash),
        ("model", None),  # Build.MODEL — device-specific
        ("platform", "android"),
        ("os", None),
        ("locale", None),
        ("tz", None),
    ):
        v = value
        if v is None:
            v = m1.scall("android.provider.Settings$Secure", "getString",
                         ["device_prop"], returns="java.lang.String")
        p = m1.new("org.apache.http.message.BasicNameValuePair", [key, v])
        m1.vcall(pairs, "add", [p], returns="boolean")
    entity = m1.new("org.apache.http.client.entity.UrlEncodedFormEntity", [pairs])
    req1 = m1.new("org.apache.http.client.methods.HttpPost",
                  [f"https://{HOST}/k/authajax"])
    m1.vcall(req1, "setEntity", [entity])
    m1.vcall(req1, "setHeader", ["User-Agent", USER_AGENT])
    resp1 = m1.vcall(client_of(m1), "execute", [req1],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body1 = m1.scall("org.apache.http.util.EntityUtils", "toString", [resp1],
                     returns="java.lang.String")
    j1 = m1.new("org.json.JSONObject", [body1])
    sid = m1.vcall(j1, "getString", ["sid"], returns="java.lang.String")
    m1.putfield(m1.this, "mSid", sid, cls=cls)
    m1.ret_void()
    emitter.add_entrypoint("registerSession", TriggerKind.LIFECYCLE,
                           "session registration")
    emitter.truth.endpoints.append(EndpointTruth(
        name="session registration", method="POST", request_body="query",
        response_body="json"))

    # -- /api/search/V8/flight/start (Table 6 row 2) -------------------------------
    m2 = cb.method("startFlightSearch",
                   params=["java.lang.String", "java.lang.String",
                           "java.lang.String"])
    sid2 = m2.getfield(m2.this, "mSid", cls=cls)
    url2 = m2.concat(
        f"https://{HOST}/api/search/V8/flight/start?cabin=e",
        "&travelers=1",
        "&origin=", m2.param(0),
        "&nearbyO=false",
        "&destination=", m2.param(1),
        "&nearbyD=false",
        "&depart_date=", m2.param(2),
        "&depart_time=a",
        "&depart_date_flex=exact",
        "&_sid_=", sid2,
    )
    req2 = m2.new("org.apache.http.client.methods.HttpGet", [url2])
    m2.vcall(req2, "setHeader", ["User-Agent", USER_AGENT])
    resp2 = m2.vcall(client_of(m2), "execute", [req2],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body2 = m2.scall("org.apache.http.util.EntityUtils", "toString", [resp2],
                     returns="java.lang.String")
    j2 = m2.new("org.json.JSONObject", [body2])
    searchid = m2.vcall(j2, "getString", ["searchid"], returns="java.lang.String")
    m2.putfield(m2.this, "mSearchId", searchid, cls=cls)
    m2.ret_void()
    emitter.add_entrypoint("startFlightSearch", TriggerKind.UI, "flight search")
    emitter.truth.endpoints.append(EndpointTruth(
        name="flight search", method="GET", response_body="json"))

    # -- /api/search/V8/flight/poll (Table 6 row 3) ------------------------------------
    m3 = cb.method("pollFlightSearch")
    searchid3 = m3.getfield(m3.this, "mSearchId", cls=cls)
    nc = m3.scall("java.lang.System", "currentTimeMillis", [], returns="long")
    url3 = m3.concat(
        f"https://{HOST}/api/search/V8/flight/poll?searchid=", searchid3,
        "&nc=", nc,
        "&c=15&s=price&d=up&currency=USD&includeopaques=true&includeSplit=false",
    )
    req3 = m3.new("org.apache.http.client.methods.HttpGet", [url3])
    m3.vcall(req3, "setHeader", ["User-Agent", USER_AGENT])
    resp3 = m3.vcall(client_of(m3), "execute", [req3],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body3 = m3.scall("org.apache.http.util.EntityUtils", "toString", [resp3],
                     returns="java.lang.String")
    j3 = m3.new("org.json.JSONObject", [body3])
    trips = m3.vcall(j3, "getJSONArray", ["tripset"], returns="org.json.JSONArray")
    t0 = m3.vcall(trips, "getJSONObject", [0], returns="org.json.JSONObject")
    m3.vcall(t0, "getString", ["price"], returns="java.lang.String")
    m3.vcall(t0, "getString", ["airline"], returns="java.lang.String")
    m3.vcall(j3, "getBoolean", ["morepending"], returns="boolean")
    m3.ret_void()
    emitter.add_entrypoint("pollFlightSearch", TriggerKind.UI, "flight poll")
    emitter.truth.endpoints.append(EndpointTruth(
        name="flight poll", method="GET", response_body="json"))

    # -- embedded ad library (outside com.kayak — excluded by scoping) ----------------
    ad = emitter.pb.class_("com.admarvel.sdk.Tracker")
    am = ad.method("ping")
    adreq = am.new("org.apache.http.client.methods.HttpGet",
                   ["https://tracking.admarvel.net/ping?partner=kayak"])
    adclient = am.local("client", "org.apache.http.client.HttpClient")
    am.assign(adclient, None)
    am.vcall(adclient, "execute", [adreq],
             returns="org.apache.http.HttpResponse",
             on="org.apache.http.client.HttpClient")
    am.ret_void()
    emitter.add_entrypoint("ping", TriggerKind.LIFECYCLE, "ad tracking", cls=_Shim(ad))
    # Scoped out of the analysis (com.kayak only, §5.3) — static_visible
    # False here means "not reported", though fuzzers still see its traffic.
    emitter.truth.endpoints.append(EndpointTruth(
        name="ad tracking", method="GET", static_visible=False))


class _Shim:
    """Adapter so add_entrypoint can address a non-main class builder."""

    def __init__(self, cb) -> None:
        self.cls = cb.cls


def _generated_endpoints() -> list[GenEndpoint]:
    out: list[GenEndpoint] = []
    ua = (("User-Agent", f"const:{USER_AGENT}"),)
    # Travel Planner: GET https://www.kayak.com/trips/v2/... (11 APIs)
    # the trip planner sits behind a sign-in drawer PUMA cannot open
    for sub in ("list", "detail", "edit/trip", "create", "delete", "share",
                "events", "flightstatus", "notes", "collaborators", "summary"):
        out.append(E(name=f"trips_{sub.replace('/', '_')}", method="GET",
                     path=f"/trips/v2/{sub}", headers=ua, custom_ui=True))
    # Authentication: POST /k/authajax variants (3 more beyond Table 6's)
    for action in ("login", "logout", "refresh"):
        out.append(E(name=f"auth_{action}", method="POST",
                     path=f"/k/authajax/{action}",
                     body=(("action", f"const:{action}"),
                           ("_sid_", "field:mSid")),
                     body_format="form", headers=ua, custom_ui=True))
    # Facebook auth: POST /k/run/fbauth (2 APIs)
    for sub in ("login", "link"):
        out.append(E(name=f"fbauth_{sub}", method="POST",
                     path=f"/k/run/fbauth/{sub}",
                     body=(("fb_token", "input"),), body_format="form",
                     headers=ua, custom_ui=True))
    # Flight: 4 more GET /api/search/V8/flight APIs (detail parsed → JSON)
    out.append(E(name="flight_detail", method="GET",
                 path="/api/search/V8/flight/detail", headers=ua,
                 query=(("resultid", "input"),),
                 response={"legs": [{"segments": []}], "price": "$420"},
                 reads=("legs", "price"), custom_ui=True))
    for sub in ("airports", "airlines", "fees"):
        out.append(E(name=f"flight_{sub}", method="GET",
                     path=f"/api/search/V8/flight/{sub}", headers=ua,
                     custom_ui=True))
    # Hotel: GET /api/search/V8/hotel (2 APIs, detail parsed)
    out.append(E(name="hotel_detail", method="GET",
                 path="/api/search/V8/hotel/detail", headers=ua,
                 query=(("hotelid", "input"),), custom_ui=True))
    out.append(E(name="hotel_poll", method="GET",
                 path="/api/search/V8/hotel/poll", headers=ua,
                 custom_ui=True))
    # Car: GET /api/search/V8/car/poll (1 API, parsed)
    out.append(E(name="car_poll", method="GET",
                 path="/api/search/V8/car/poll", headers=ua,
                 response={"cars": [{"agency": "Avis", "price": "$40"}]},
                 reads=("cars",), custom_ui=True))
    # Mobile-specific: GET /h/mobileapis (12 APIs)
    for sub in ("currency/allRates", "airports/list", "flighttracker/search",
                "pricealerts/list", "pricealerts/create", "profile/get",
                "settings/get", "notifications/register", "translations/get",
                "servers/list", "featureflags", "appversion"):
        out.append(E(name=f"mobile_{sub.replace('/', '_')}", method="GET",
                     path=f"/h/mobileapis/{sub}", headers=ua))
    # Advertising: GET /s/mobileads (1 API, parsed JSON)
    out.append(E(name="mobileads", method="GET", path="/s/mobileads",
                 headers=ua,
                 response={"ads": [{"unit": "front-door", "img":
                                    "https://content.kayak.com/ad1.png"}]},
                 reads=("ads",)))
    # Etc: POST /k/... (4 APIs)
    for sub in ("cookie", "geo", "clickthrough", "feedback"):
        out.append(E(name=f"k_{sub}", method="POST", path=f"/k/{sub}",
                     body=(("payload", "input"),), body_format="form",
                     headers=ua))
    return out


def _routes():
    def authajax(request, state):
        state["sid"] = "sid-kayak-91"
        return HttpResponse.json_response({"sid": "sid-kayak-91",
                                           "status": "registered"})

    def flight_start(request, state):
        if request.headers.get("User-Agent") != USER_AGENT:
            return HttpResponse(status=403, body="bad client")
        state["searchid"] = "search-777"
        return HttpResponse.json_response({"searchid": "search-777",
                                           "status": "started"})

    def flight_poll(request, state):
        if request.headers.get("User-Agent") != USER_AGENT:
            return HttpResponse(status=403, body="bad client")
        return HttpResponse.json_response({
            "tripset": [{"price": "$423", "airline": "KE",
                         "duration": "11h 5m"}],
            "morepending": False,
        })

    return (
        (HOST, "POST", r"/k/authajax", authajax),
        (HOST, "GET", r"/api/search/V8/flight/start", flight_start),
        (HOST, "GET", r"/api/search/V8/flight/poll", flight_poll),
        ("tracking.admarvel.net", "GET", r"/ping",
         lambda req, state: HttpResponse.json_response({"ok": 1})),
    )


def kayak() -> GenApp:
    return GenApp(
        key="kayak",
        name="KAYAK",
        kind="closed",
        package="com.kayak.android",
        host=HOST,
        protocol="HTTPS",
        endpoints=_generated_endpoints(),
        custom=_build,
        extra_routes=_routes(),
        filler_methods=60,
        scope_prefixes=("com.kayak",),
        notes="§5.3 / Tables 5-6 reverse-engineering case study.",
    )


__all__ = ["USER_AGENT", "kayak"]
