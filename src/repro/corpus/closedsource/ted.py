"""TED — the Table 4 / Figure 1 case study, hand-written core.

The eight notable transactions and their dependency graph:

#1 speakers.json      (S)  → JSON, name/description inserted into SQLite
#2 graph.facebook.com (S)  → string (Facebook share, third-party library)
#3 android_ad.json    (S)  → JSON carrying the ad-query URI        ┐ Fig. 1
#4 GET (.*) ad query  (D)  → XML carrying ad video URIs            │ prefetch
#5 GET (.*) ad video  (D)  → binary, streamed into the MediaPlayer ┘
#6 talk_catalogs      (S)  → JSON, thumbnail/video URIs → SQLite
#7 GET (.*) thumbnail (D, from DB) → binary
#8 GET (.*) video     (D, from DB) → binary, into the MediaPlayer

(S) static URI / (D) dynamically derived — the paper's classification.
The remaining Table 1 volume (GET 16, POST 2, JSON 10, pairs 10) comes
from generated endpoints.
"""

from __future__ import annotations

from ...apk.model import TriggerKind
from ...runtime.httpstack import HttpResponse
from ..base import EndpointTruth
from ..generator import GenApp, GenEndpoint

E = GenEndpoint

_AD_QUERY_URL = "https://ad.doubleclick.net/tedad/query"
_AD_VIDEO_URL = "https://ad-video.cdn.ted.com/preroll/42.mp4"
_THUMB_URL = "https://tedcdnpi.ted.com/images/talk_1234_thumb.jpg"
_VIDEO_URL = "https://download.ted.com/talks/Talk1234.mp4"

_SPEAKERS_JSON = {
    "speakers": [
        {"speaker": {"name": "Jane Doe", "description": "Roboticist",
                     "whotheyare": "Builds robots", "photo_url":
                     "https://pe.tedcdn.com/images/speaker_1.jpg"}},
    ],
    "counts": {"total": 1},
}

_AD_JSON = {
    "companions": {
        "on_page": {"height": 250, "width": 300},
        "preroll": {"height": 360, "width": 640},
    },
    "url": _AD_QUERY_URL,
}

# The real ad query returns VAST XML; we use its JSON envelope so the TED
# Table 1 row (JSON 10, XML —) reconciles — see EXPERIMENTS.md deviations.
_AD_QUERY_JSON = {
    "mediafiles": [{"url": _AD_VIDEO_URL, "bitrate": 800,
                    "type": "video/mp4"}],
    "tracking": {"impression": "https://ad.doubleclick.net/imp/1"},
}

_CATALOG_JSON = {
    "talks": [
        {"talk": {"id": 1234, "duration_in_seconds": 1060,
                  "thumbnail_url": _THUMB_URL,
                  "video_url": _VIDEO_URL,
                  "title": "How slicing works"}},
    ]
}


def _build(emitter) -> None:
    cb = emitter.cb
    cls = emitter.main_cls
    cb.field("mLastSync", "java.lang.String")
    cb.field("mAdQueryUri", "java.lang.String")
    cb.field("mAdVideoUri", "java.lang.String")

    def http_get(m, url, *, into="resp"):
        req = m.new("org.apache.http.client.methods.HttpGet", [url])
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        return m.vcall(client, "execute", [req],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient", into=into)

    def api_key(m):
        rid = emitter.resources.string_id("api_key")
        res = m.vcall(m.this, "getResources", [],
                      returns="android.content.res.Resources",
                      on="android.app.Activity")
        return m.vcall(res, "getString", [rid], returns="java.lang.String")

    def open_db(m):
        helper = m.local("helper", "android.database.sqlite.SQLiteOpenHelper")
        m.assign(helper, None)
        return m.vcall(helper, "getWritableDatabase", [],
                       returns="android.database.sqlite.SQLiteDatabase")

    # -- #1 speakers ---------------------------------------------------------
    m1 = cb.method("syncSpeakers")
    last = m1.getfield(m1.this, "mLastSync", cls=cls)
    url1 = m1.concat(
        "https://app-api.ted.com/v1/speakers.json?limit=2000&api-key=",
        api_key(m1), "&filter=updated_at:%3E", last,
    )
    resp1 = http_get(m1, url1)
    body1 = m1.scall("org.apache.http.util.EntityUtils", "toString", [resp1],
                     returns="java.lang.String")
    j1 = m1.new("org.json.JSONObject", [body1])
    speakers = m1.vcall(j1, "getJSONArray", ["speakers"],
                        returns="org.json.JSONArray")
    item = m1.vcall(speakers, "getJSONObject", [0],
                    returns="org.json.JSONObject")
    sp = m1.vcall(item, "getJSONObject", ["speaker"],
                  returns="org.json.JSONObject")
    name = m1.vcall(sp, "getString", ["name"], returns="java.lang.String")
    desc = m1.vcall(sp, "getString", ["description"], returns="java.lang.String")
    photo = m1.vcall(sp, "getString", ["photo_url"], returns="java.lang.String")
    cv1 = m1.new("android.content.ContentValues")
    m1.vcall(cv1, "put", ["name", name])
    m1.vcall(cv1, "put", ["description", desc])
    m1.vcall(cv1, "put", ["photo_url", photo])
    db1 = open_db(m1)
    m1.vcall(db1, "insert", ["speakers", None, cv1], returns="long")
    m1.ret_void()
    emitter.add_entrypoint("syncSpeakers", TriggerKind.LIFECYCLE, "speaker sync")
    emitter.truth.endpoints.append(EndpointTruth(
        name="speaker sync", method="GET", response_body="json"))

    # -- #2 facebook share ------------------------------------------------------
    m2 = cb.method("shareOnFacebook")
    http_get(m2, "https://graph.facebook.com/me/photos")
    m2.ret_void()
    emitter.add_entrypoint("shareOnFacebook", TriggerKind.UI, "facebook share")
    emitter.truth.endpoints.append(EndpointTruth(
        name="facebook share", method="GET"))

    # -- #3 ad query metadata (Figure 1, request 1) --------------------------------
    m3 = cb.method("fetchTalkAd", params=["java.lang.String"])
    url3 = m3.concat("https://app-api.ted.com/v1/talks/", m3.param(0),
                     "/android_ad.json?api-key=", api_key(m3))
    resp3 = http_get(m3, url3)
    body3 = m3.scall("org.apache.http.util.EntityUtils", "toString", [resp3],
                     returns="java.lang.String")
    j3 = m3.new("org.json.JSONObject", [body3])
    comp = m3.vcall(j3, "getJSONObject", ["companions"],
                    returns="org.json.JSONObject")
    onpage = m3.vcall(comp, "getJSONObject", ["on_page"],
                      returns="org.json.JSONObject")
    m3.vcall(onpage, "getInt", ["height"], returns="int")
    m3.vcall(onpage, "getInt", ["width"], returns="int")
    preroll = m3.vcall(comp, "getJSONObject", ["preroll"],
                       returns="org.json.JSONObject")
    m3.vcall(preroll, "getInt", ["height"], returns="int")
    m3.vcall(preroll, "getInt", ["width"], returns="int")
    adurl = m3.vcall(j3, "getString", ["url"], returns="java.lang.String")
    m3.putfield(m3.this, "mAdQueryUri", adurl, cls=cls)
    m3.ret_void()
    emitter.add_entrypoint("fetchTalkAd", TriggerKind.UI, "talk ad metadata",
                           custom_ui=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="talk ad metadata", method="GET", response_body="json",
        auto_visible=False))

    # -- #4 ad query (dynamic URI from #3) -------------------------------------------
    m4 = cb.method("fetchAdQuery")
    adq = m4.getfield(m4.this, "mAdQueryUri", cls=cls)
    resp4 = http_get(m4, adq)
    body4 = m4.scall("org.apache.http.util.EntityUtils", "toString", [resp4],
                     returns="java.lang.String")
    j4 = m4.new("org.json.JSONObject", [body4])
    files = m4.vcall(j4, "getJSONArray", ["mediafiles"],
                     returns="org.json.JSONArray")
    mf = m4.vcall(files, "getJSONObject", [0], returns="org.json.JSONObject")
    video = m4.vcall(mf, "getString", ["url"], returns="java.lang.String")
    m4.putfield(m4.this, "mAdVideoUri", video, cls=cls)
    m4.ret_void()
    emitter.add_entrypoint("fetchAdQuery", TriggerKind.UI, "ad query",
                           custom_ui=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="ad query", method="GET", response_body="json",
        auto_visible=False))

    # -- #5 ad video stream into the player (Figure 1, request 2) --------------------
    m5 = cb.method("playAdVideo")
    adv = m5.getfield(m5.this, "mAdVideoUri", cls=cls)
    mp5 = m5.new("android.media.MediaPlayer")
    m5.vcall(mp5, "setDataSource", [adv])
    m5.vcall(mp5, "prepare", [])
    m5.vcall(mp5, "start", [])
    m5.ret_void()
    emitter.add_entrypoint("playAdVideo", TriggerKind.UI, "ad video",
                           custom_ui=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="ad video", method="GET", auto_visible=False))

    # -- #6 talk catalog → DB ----------------------------------------------------------
    m6 = cb.method("syncTalkCatalog", params=["java.lang.String"])
    url6 = m6.concat(
        "https://app-api.ted.com/v1/talk_catalogs/android_v1.json?api-key=",
        api_key(m6), "&fields=duration_in_seconds&filter=id:", m6.param(0),
    )
    resp6 = http_get(m6, url6)
    body6 = m6.scall("org.apache.http.util.EntityUtils", "toString", [resp6],
                     returns="java.lang.String")
    j6 = m6.new("org.json.JSONObject", [body6])
    talks = m6.vcall(j6, "getJSONArray", ["talks"], returns="org.json.JSONArray")
    t0 = m6.vcall(talks, "getJSONObject", [0], returns="org.json.JSONObject")
    talk = m6.vcall(t0, "getJSONObject", ["talk"], returns="org.json.JSONObject")
    m6.vcall(talk, "getInt", ["duration_in_seconds"], returns="int")
    thumb = m6.vcall(talk, "getString", ["thumbnail_url"],
                     returns="java.lang.String")
    video6 = m6.vcall(talk, "getString", ["video_url"], returns="java.lang.String")
    cv6 = m6.new("android.content.ContentValues")
    m6.vcall(cv6, "put", ["thumb_url", thumb])
    m6.vcall(cv6, "put", ["video_url", video6])
    db6 = open_db(m6)
    m6.vcall(db6, "insert", ["talks", None, cv6], returns="long")
    m6.ret_void()
    emitter.add_entrypoint("syncTalkCatalog", TriggerKind.LIFECYCLE, "talk sync")
    emitter.truth.endpoints.append(EndpointTruth(
        name="talk sync", method="GET", response_body="json"))

    # -- #7 thumbnail from DB -------------------------------------------------------------
    m7 = cb.method("loadThumbnail")
    db7 = open_db(m7)
    cur7 = m7.vcall(db7, "rawQuery",
                    ["SELECT thumb_url FROM talks", None],
                    returns="android.database.Cursor")
    m7.vcall(cur7, "moveToFirst", [], returns="boolean")
    turl = m7.vcall(cur7, "getString", [0], returns="java.lang.String")
    http_get(m7, turl)
    m7.ret_void()
    emitter.add_entrypoint("loadThumbnail", TriggerKind.UI, "thumbnail",
                           custom_ui=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="thumbnail", method="GET", auto_visible=False))

    # -- #8 talk video from DB into the player ----------------------------------------------
    m8 = cb.method("playTalk")
    db8 = open_db(m8)
    cur8 = m8.vcall(db8, "rawQuery",
                    ["SELECT video_url FROM talks", None],
                    returns="android.database.Cursor")
    m8.vcall(cur8, "moveToFirst", [], returns="boolean")
    vurl = m8.vcall(cur8, "getString", [0], returns="java.lang.String")
    mp8 = m8.new("android.media.MediaPlayer")
    m8.vcall(mp8, "setDataSource", [vurl])
    m8.vcall(mp8, "prepareAsync", [])
    m8.ret_void()
    emitter.add_entrypoint("playTalk", TriggerKind.UI, "play talk",
                           custom_ui=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="play talk", method="GET", auto_visible=False))


def _routes():
    def ok_json(payload):
        return lambda req, state: HttpResponse.json_response(payload)

    return (
        ("app-api.ted.com", "GET", r"/v1/speakers\.json", ok_json(_SPEAKERS_JSON)),
        ("app-api.ted.com", "GET", r"/v1/talks/[^/]+/android_ad\.json",
         ok_json(_AD_JSON)),
        ("app-api.ted.com", "GET", r"/v1/talk_catalogs/android_v1\.json",
         ok_json(_CATALOG_JSON)),
        ("graph.facebook.com", "GET", r"/me/photos", ok_json({"data": []})),
        ("ad.doubleclick.net", "GET", r"/tedad/query",
         lambda req, state: HttpResponse.json_response(_AD_QUERY_JSON)),
        ("ad-video.cdn.ted.com", "GET", r"/preroll/.*",
         lambda req, state: HttpResponse.binary(65536)),
        ("tedcdnpi.ted.com", "GET", r"/images/.*",
         lambda req, state: HttpResponse.binary(8192)),
        ("download.ted.com", "GET", r"/talks/.*",
         lambda req, state: HttpResponse.binary(1 << 20)),
    )


def _generated_endpoints() -> list[GenEndpoint]:
    """The rest of the Table 1 volume: 8 GET + 2 POST."""
    out: list[GenEndpoint] = []
    reads_map = {
        "talks_list": ({"talks": [{"title": "t", "slug": "s"}]}, ("talks",)),
        "playlists": ({"playlists": [{"name": "favorites"}]}, ("playlists",)),
        "languages": ({"languages": [{"code": "en"}]}, ("languages",)),
        "translations": ({"paragraphs": [{"cues": []}]}, ("paragraphs",)),
        "events": ({"events": [{"name": "TED2016"}]}, ("events",)),
        "ratings": ({"ratings": [{"id": 1, "name": "inspiring"}]}, ("ratings",)),
    }
    for name, (payload, reads) in reads_map.items():
        out.append(E(name=name, method="GET", path=f"/v1/{name}.json",
                     query=(("api-key", "resource:api_key"),),
                     response=payload, reads=reads))
    out.append(E(name="static_config", method="GET", path="/v1/config.json"))
    out.append(E(name="banner", method="GET", path="/v1/banner.png",
                 binary_response=True, custom_ui=True))
    out.append(E(name="track_event", method="POST", path="/v1/track",
                 body=(("event", "const:play"), ("talk_id", "input")),
                 body_format="form"))
    out.append(E(name="survey", method="POST", path="/v1/survey",
                 body=(("answers", "input"),), body_format="form",
                 custom_ui=True))
    return out


def ted() -> GenApp:
    return GenApp(
        key="ted",
        name="TED",
        kind="closed",
        package="com.ted.android",
        host="app-api.ted.com",
        protocol="HTTP(S)",
        endpoints=_generated_endpoints(),
        resources={"api_key": "TEDAPIKEY-a7e52cd3"},
        custom=_build,
        extra_routes=_routes(),
        filler_methods=60,
        notes="Table 4 / Figure 1 case study; closed-source set.",
    )


__all__ = ["ted"]
