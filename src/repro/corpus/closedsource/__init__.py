"""Closed-source corpus apps (the Google-Play top-chart set of Table 1)."""

from .fleet import ROWS, all_fleet_apps, fleet_app
from .kayak import kayak
from .ted import ted

__all__ = ["ROWS", "all_fleet_apps", "fleet_app", "kayak", "ted"]
