"""Corpus foundation: app specifications and ground truth.

Every corpus app packages (1) an APK built in the IR, (2) a scripted origin
server, and (3) the ground-truth endpoint inventory — the "source code
analysis" column of Table 1 for open-source apps.  Endpoint trigger classes
encode *why* each discovery method sees or misses a message, per §5.1:

========================  =========  ============  ==========  ==========
endpoint class             static     manual fuzz   auto fuzz   example
========================  =========  ============  ==========  ==========
plain UI                   yes        yes           yes         browse feed
login-gated / custom UI    yes        yes           no          saved items
side-effect action         yes        no            no          purchase
timer / server push        yes        no            no          update check
intent + multi-hop async   no (§3.4)  yes           sometimes   ad libraries
========================  =========  ============  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..apk.model import Apk
from ..runtime.httpstack import Network


@dataclass(frozen=True)
class EndpointTruth:
    """One endpoint in the app's source-code inventory."""

    name: str
    method: str  # GET | POST | PUT | DELETE
    #: request payload class: "query" (query string or form body), "json",
    #: "xml", or None
    request_body: str | None = None
    #: response body class the app processes: "json", "xml", or None
    response_body: str | None = None
    #: discovery class, see the table above
    static_visible: bool = True
    manual_visible: bool = True
    auto_visible: bool = True


@dataclass
class GroundTruth:
    endpoints: list[EndpointTruth] = field(default_factory=list)

    def count(self, method: str | None = None, *, visible_to: str | None = None) -> int:
        out = 0
        for ep in self.endpoints:
            if method is not None and ep.method != method:
                continue
            if visible_to == "static" and not ep.static_visible:
                continue
            if visible_to == "manual" and not ep.manual_visible:
                continue
            if visible_to == "auto" and not ep.auto_visible:
                continue
            out += 1
        return out

    def pairs(self) -> int:
        return sum(1 for ep in self.endpoints if ep.response_body)


@dataclass
class AppSpec:
    """A corpus entry: builders plus metadata for the evaluation tables."""

    key: str
    name: str
    kind: str  # "open" | "closed"
    protocol: str  # "HTTP" | "HTTPS" | "HTTP(S)"
    build_apk: Callable[[], Apk]
    build_network: Callable[[], Network]
    truth: GroundTruth
    #: class-name prefixes for scoped analysis (Kayak case study)
    scope_prefixes: tuple[str, ...] = ()
    notes: str = ""


__all__ = ["AppSpec", "EndpointTruth", "GroundTruth"]
