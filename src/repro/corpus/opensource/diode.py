"""Diode — the reddit client of paper Figure 3.

The ``doInBackground`` method reproduces the figure: a branchy
StringBuilder URI construction (front page / search / subreddit, each with
optional before/after pagination) flowing into an Apache HttpClient
demarcation point, with the JSON listing parsed afterwards.  The remaining
GET endpoints (Table 1 counts 24 GET signatures, 2 JSON bodies, 5 pairs)
are generated.
"""

from __future__ import annotations

from ...apk.model import TriggerKind
from ...runtime.httpstack import HttpResponse
from ..base import EndpointTruth
from ..generator import GenApp, GenEndpoint

E = GenEndpoint

REDDIT_BASE_URL = "http://www.reddit.com"
MAIN = "in.shick.diode.ThreadsListActivity"


def _figure3_method(emitter) -> None:
    """The request/response slice example of Figure 3."""
    cb = emitter.cb
    cb.field("mSubreddit", "java.lang.String")
    cb.field("mSearchQuery", "java.lang.String")
    cb.field("mSortByUrl", "java.lang.String")
    cb.field("mAfter", "java.lang.String")
    cb.field("mBefore", "java.lang.String")
    cb.field("mCount", "java.lang.String")

    m = cb.method("doInBackground", returns="boolean")
    cls = emitter.main_cls
    sub = m.getfield(m.this, "mSubreddit", cls=cls)
    sort = m.getfield(m.this, "mSortByUrl", cls=cls)
    sb = m.local("sb", "java.lang.StringBuilder")

    # if (FRONTPAGE.equals(mSubreddit)) { base + sort + .json? }
    is_front = m.scall("java.lang.String", "valueOf", [sub],
                       returns="java.lang.String")
    front_flag = m.vcall(is_front, "isEmpty", [], returns="boolean")
    m.if_goto(front_flag, "==", 0, "NOTFRONT")
    sb1 = m.new("java.lang.StringBuilder", [REDDIT_BASE_URL + "/"])
    m.vcall(sb1, "append", [sort], returns="java.lang.StringBuilder")
    m.vcall(sb1, "append", [".json?"], returns="java.lang.StringBuilder")
    m.assign(sb, sb1)
    m.goto("PAGINATE")

    m.label("NOTFRONT")
    query = m.getfield(m.this, "mSearchQuery", cls=cls)
    has_query = m.vcall(query, "isEmpty", [], returns="boolean")
    m.if_goto(has_query, "!=", 0, "SUBREDDIT")
    sb2 = m.new("java.lang.StringBuilder", [REDDIT_BASE_URL + "/search/"])
    m.vcall(sb2, "append", [".json?q="], returns="java.lang.StringBuilder")
    encoded = m.scall("java.net.URLEncoder", "encode", [query, "UTF-8"],
                      returns="java.lang.String")
    m.vcall(sb2, "append", [encoded], returns="java.lang.StringBuilder")
    m.vcall(sb2, "append", ["&sort="], returns="java.lang.StringBuilder")
    m.vcall(sb2, "append", [sort], returns="java.lang.StringBuilder")
    m.assign(sb, sb2)
    m.goto("PAGINATE")

    m.label("SUBREDDIT")
    sb3 = m.new("java.lang.StringBuilder", [REDDIT_BASE_URL + "/r/"])
    trimmed = m.vcall(sub, "trim", [], returns="java.lang.String")
    m.vcall(sb3, "append", [trimmed], returns="java.lang.StringBuilder")
    m.vcall(sb3, "append", ["/"], returns="java.lang.StringBuilder")
    m.vcall(sb3, "append", [sort], returns="java.lang.StringBuilder")
    m.vcall(sb3, "append", [".json?"], returns="java.lang.StringBuilder")
    m.assign(sb, sb3)

    m.label("PAGINATE")
    after = m.getfield(m.this, "mAfter", cls=cls)
    count = m.getfield(m.this, "mCount", cls=cls)
    m.if_goto(after, "==", None, "TRYBEFORE")
    m.vcall(sb, "append", ["count="], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [count], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", ["&after="], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [after], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", ["&"], returns="java.lang.StringBuilder")
    m.goto("EXECUTE")
    m.label("TRYBEFORE")
    before = m.getfield(m.this, "mBefore", cls=cls)
    m.if_goto(before, "==", None, "EXECUTE")
    m.vcall(sb, "append", ["count="], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [count], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", ["&before="], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [before], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", ["&"], returns="java.lang.StringBuilder")

    m.label("EXECUTE")
    url = m.vcall(sb, "toString", [], returns="java.lang.String", into="url")
    request = m.new("org.apache.http.client.methods.HttpGet", [url],
                    into="request")
    client = m.local("mClient", "org.apache.http.client.HttpClient")
    m.assign(client, None)
    response = m.vcall(client, "execute", [request],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient", into="response")
    entity = m.vcall(response, "getEntity", [],
                     returns="org.apache.http.HttpEntity", into="in")
    body = m.scall("org.apache.http.util.EntityUtils", "toString", [entity],
                   returns="java.lang.String", into="body")
    m.call_this("parseSubredditJSON", [body])
    m.ret(1)

    p = cb.method("parseSubredditJSON", params=["java.lang.String"])
    listing = p.new("org.json.JSONObject", [p.param(0)], into="listing")
    data = p.vcall(listing, "getJSONObject", ["data"],
                   returns="org.json.JSONObject", into="data")
    after2 = p.vcall(data, "getString", ["after"], returns="java.lang.String",
                     into="after2")
    p.putfield(p.this, "mAfter", after2, cls=cls)
    children = p.vcall(data, "getJSONArray", ["children"],
                       returns="org.json.JSONArray", into="children")
    n = p.vcall(children, "length", [], returns="int", into="n")
    i = p.let("i", "int", 0)
    p.label("LOOP")
    p.if_goto(i, ">=", n, "DONE")
    child = p.vcall(children, "getJSONObject", [i],
                    returns="org.json.JSONObject", into="child")
    cdata = p.vcall(child, "getJSONObject", ["data"],
                    returns="org.json.JSONObject", into="cdata")
    p.vcall(cdata, "getString", ["title"], returns="java.lang.String")
    p.vcall(cdata, "getString", ["permalink"], returns="java.lang.String")
    p.vcall(cdata, "getInt", ["score"], returns="int")
    i2 = p.binop("+", i, 1)
    p.assign(i, i2)
    p.goto("LOOP")
    p.label("DONE")
    p.ret_void()

    emitter.add_entrypoint("doInBackground", TriggerKind.UI, "load listing")
    emitter.truth.endpoints.append(
        EndpointTruth(name="load listing", method="GET",
                      response_body="json")
    )


_LISTING_JSON = {
    "data": {
        "after": "t3_3gu1nn",
        "children": [
            {"data": {"title": "TIL about slicing", "permalink": "/r/til/1",
                      "score": 1234, "author": "alice"}},
            {"data": {"title": "Extractocol is neat", "permalink": "/r/prog/2",
                      "score": 99, "author": "bob"}},
        ],
    }
}


def _listing_route(request, state):
    return HttpResponse.json_response(_LISTING_JSON)


def diode() -> GenApp:
    """Diode: GET 24; JSON 2; 5 pairs (Table 1)."""
    # 23 further GET endpoints beyond the Figure-3 listing fetch.
    endpoints: list[GenEndpoint] = []
    # 4 with processed responses (pairs #2..#5); one JSON body elsewhere.
    endpoints.append(
        E(name="comments", method="GET",
          path="/r/pics/comments/3gu1nn/.json",
          response={"data": {"children": [{"data": {"body": "comment",
                                                    "ups": 10}}]}},
          reads=("data",))
    )
    # three text pages rendered in the UI (pairs without JSON structure)
    endpoints.append(
        E(name="user_profile", method="GET", path="/user/alice/about",
          display_text=True, text_response="alice: redditor for 4 years")
    )
    endpoints.append(
        E(name="sidebar", method="GET", path="/r/pics/sidebar",
          display_text=True, text_response="welcome to /r/pics")
    )
    endpoints.append(
        E(name="wiki_page", method="GET", path="/r/pics/wiki/rules",
          display_text=True, text_response="1. no screenshots")
    )
    # 19 plain GETs: thumbnails, static pages, captcha, rss variants ...
    for i, path in enumerate(
        [
            "/r/pics/new/.json", "/r/pics/top/.json", "/r/pics/controversial/.json",
            "/r/all/.json", "/message/inbox/.json", "/message/unread/.json",
            "/message/sent/.json", "/prefs/friends/.json", "/subreddits/mine.json",
            "/subreddits/popular.json", "/api/needs_captcha.json",
            "/captcha/abcd.png", "/static/award.png", "/favicon.ico",
            "/r/random/.json", "/by_id/t3_1.json", "/duplicates/3gu1nn.json",
            "/r/pics/wiki/index.json", "/live/updates.json",
        ]
    ):
        binary = path.endswith((".png", ".ico"))
        endpoints.append(E(name=f"get_{i}", method="GET", path=path,
                           binary_response=binary))
    return GenApp(
        key="diode",
        name="Diode",
        kind="open",
        package="in.shick.diode",
        host="www.reddit.com",
        protocol="HTTP(S)",
        https=False,
        endpoints=endpoints,
        custom=_figure3_method,
        extra_routes=(
            ("www.reddit.com", "GET", r"/(r/\w+/)?(search/)?(\w+/)?\.json.*",
             _listing_route),
        ),
        filler_methods=40,
        notes="Figure 3's request/response slices come from doInBackground.",
    )


__all__ = ["diode"]
