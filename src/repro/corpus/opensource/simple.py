"""The simpler open-source corpus apps (F-Droid set, paper Table 1).

Each spec mirrors the real app's API surface: hosts, paths, body formats
and response structures are modeled on the actual services (reddit,
arxiv, qBittorrent's WebUI, Twister's JSON-RPC, wallabag, ...), with the
endpoint counts matching the Table 1 row.  Diode, radio reddit and
Weather Notification are hand-written in their own modules.
"""

from __future__ import annotations

from ..generator import GenApp, GenEndpoint

E = GenEndpoint


def adblock_plus() -> GenApp:
    """Adblock Plus: GET 2, POST 1; query 1; XML response 1; 1 pair."""
    return GenApp(
        key="adblock",
        name="Adblock Plus",
        kind="open",
        package="org.adblockplus.android",
        host="adblockplus.org",
        protocol="HTTPS",
        endpoints=[
            E(name="filter_list", method="GET",
              path="/easylist/easylist.txt"),
            E(name="update_check", method="GET", path="/android/update.xml",
              query=(("lastversion", "const:1.3"),),
              response_xml=(
                  "<updates><application><version>1.3.1</version>"
                  "<url>https://adblockplus.org/android/apk</url>"
                  "</application></updates>"
              ),
              xml_reads=("version", "url")),
            E(name="report_issue", method="POST", path="/usercounter",
              body=(("addon", "const:adblockplusandroid"),
                    ("version", "const:1.3"), ("filters", "input")),
              body_format="form",
              response={"ok": True}),
        ],
    )


def anarxiv() -> GenApp:
    """AnarXiv (arXiv reader): GET 2; XML 2; 2 pairs."""
    return GenApp(
        key="anarxiv",
        name="AnarXiv",
        kind="open",
        package="org.anarxiv",
        host="export.arxiv.org",
        protocol="HTTP",
        https=False,
        endpoints=[
            E(name="query_papers", method="GET", path="/api/query",
              query=(("search_query", "input"), ("max_results", "int:20")),
              response_xml=(
                  "<feed><entry><title>Paper title</title>"
                  "<summary>abstract text</summary>"
                  "<author><name>A. Author</name></author>"
                  "<published>2016-01-01</published></entry></feed>"
              ),
              xml_reads=("entry", "title", "summary", "author")),
            E(name="paper_detail", method="GET", path="/api/query/id",
              response_xml=(
                  "<feed><entry><id>arXiv:1600.00001</id>"
                  "<title>Paper title</title><link>http://arxiv.org/pdf</link>"
                  "</entry></feed>"
              ),
              xml_reads=("id", "link")),
        ],
    )


def blippex() -> GenApp:
    """blippex: GET 1; JSON 1; 1 pair."""
    return GenApp(
        key="blippex",
        name="blippex",
        kind="open",
        package="com.blippex.app",
        host="api.blippex.org",
        protocol="HTTPS",
        endpoints=[
            E(name="search", method="GET", path="/search",
              query=(("q", "input"), ("page", "int:1")),
              response={
                  "results": [{"url": "https://example.org", "title": "hit",
                               "dwelltime": 42}],
                  "total": 1,
              },
              reads=("results", "total")),
        ],
    )


def diaspora_webclient() -> GenApp:
    """Diaspora WebClient: GET 1; JSON 1; 1 pair."""
    return GenApp(
        key="diaspora",
        name="Diaspora WebClient",
        kind="open",
        package="com.github.dfa.diaspora_android",
        host="podupti.me",
        protocol="HTTP",
        https=False,
        endpoints=[
            E(name="pod_list", method="GET", path="/v1/pods.json",
              response={
                  "pods": [{"host": "pod.geraspora.de", "score": 95,
                            "uptime": "99.9"}],
              },
              reads=("pods",)),
        ],
    )


def ifixit() -> GenApp:
    """iFixIt: GET 15, POST 7; query 3; JSON 14; 14 pairs."""
    gets = []
    # Browsing endpoints with JSON responses (11 of the GETs are paired).
    browse = [
        ("categories", "/api/2.0/categories",
         {"Electronics": {"Phone": {}}, "Vehicle": {}}, ("Electronics",)),
        ("guides", "/api/2.0/guides",
         {"guides": [{"guideid": 101, "title": "Battery swap",
                      "image": "https://guide-images.cdn.ifixit.com/1.jpg"}]},
         ("guides",)),
        ("guide_detail", "/api/2.0/guides/101",
         {"title": "Battery swap", "steps": [{"text": "Remove screws"}],
          "tools": ["spudger"], "difficulty": "Moderate"},
         ("title", "steps", "difficulty")),
        ("teardowns", "/api/2.0/teardowns",
         {"teardowns": [{"title": "Phone X Teardown"}]}, ("teardowns",)),
        ("wikis", "/api/2.0/wikis/CATEGORY",
         {"display_title": "Phone", "contents_rendered": "<p>..</p>"},
         ("display_title", "contents_rendered")),
        ("users_me", "/api/2.0/users/me",
         {"userid": 7, "username": "fixer", "reputation": 12},
         ("userid", "username")),
        ("tags", "/api/2.0/tags",
         {"tags": [{"name": "battery", "count": 9}]}, ("tags",)),
        ("comments", "/api/2.0/comments",
         {"comments": [{"text": "worked!", "author": "bob"}]}, ("comments",)),
        ("badges", "/api/2.0/badges",
         {"badges": [{"name": "helper"}]}, ("badges",)),
        ("collections", "/api/2.0/collections",
         {"collections": [{"title": "my fixes"}]}, ("collections",)),
        ("stories", "/api/2.0/stories", None, ()),
    ]
    for name, path, payload, reads in browse:
        gets.append(E(name=name, method="GET", path=path,
                      response=payload if reads else None, reads=reads))
    # Search GETs with query strings (3 query-string signatures).
    gets.append(E(name="search", method="GET", path="/api/2.0/search",
                  query=(("query", "input"), ("limit", "int:20"))))
    gets.append(E(name="suggest", method="GET", path="/api/2.0/suggest",
                  query=(("q", "input"),)))
    gets.append(E(name="image_meta", method="GET", path="/api/2.0/media/images",
                  query=(("guid", "device"),)))
    # Unpaired GET (response ignored — a cache warm-up ping).
    gets.append(E(name="ping", method="GET", path="/api/2.0/ping"))

    posts = [
        E(name="login", method="POST", path="/api/2.0/user/token",
          body=(("email", "input"), ("password", "input")),
          body_format="json",
          response={"authToken": "tok-ifixit", "userid": 7},
          reads=("authToken",), store={"authToken": "token"}),
    ]
    # 3 JSON-bodied POSTs whose JSON responses are parsed
    for name, path, payload, reads in [
        ("create_guide", "/api/2.0/guides",
         {"guideid": 202, "revisionid": 1}, ("guideid",)),
        ("add_comment", "/api/2.0/comments",
         {"commentid": 9, "status": "public"}, ("commentid",)),
        ("favorite", "/api/2.0/user/favorites/guides/101",
         {"favorited": True, "count": 3}, ("count",)),
    ]:
        posts.append(
            E(name=name, method="POST", path=path,
              body=(("data", "input"),), body_format="json",
              headers=(("Authorization", "field:token"),),
              response=payload, reads=reads,
              requires_login=True)
        )
    # 2 form-bodied POSTs (plus login's JSON body) — the query-string rows
    posts.append(E(name="upload_image", method="POST",
                   path="/api/2.0/user/media/images",
                   body=(("file", "input"), ("cropSize", "const:300x300")),
                   body_format="form",
                   headers=(("Authorization", "field:token"),),
                   requires_login=True))
    posts.append(E(name="report_abuse", method="POST", path="/api/2.0/flags",
                   body=(("reason", "input"), ("itemid", "const:101")),
                   body_format="form"))
    posts.append(E(name="logout", method="POST", path="/api/2.0/user/token/revoke",
                   body=(("token", "field:token"),), body_format="form",
                   requires_login=True))
    return GenApp(
        key="ifixit",
        name="iFixIt",
        kind="open",
        package="com.dozuki.ifixit",
        host="www.ifixit.com",
        protocol="HTTP",
        https=False,
        endpoints=gets + posts,
        filler_methods=20,
    )


def lightning() -> GenApp:
    """Lightning (browser): GET 2; XML 1; 1 pair."""
    return GenApp(
        key="lightning",
        name="Lightning",
        kind="open",
        package="acr.browser.lightning",
        host="www.bing.com",
        protocol="HTTP",
        https=False,
        endpoints=[
            E(name="suggestions", method="GET", path="/osjson.aspx",
              query=(("query", "input"),),
              response_xml=(
                  "<SearchSuggestion><Section><Item><Text>cats videos</Text>"
                  "</Item></Section></SearchSuggestion>"
              ),
              xml_reads=("Item", "Text")),
            E(name="homepage", method="GET", path="/"),
        ],
    )


def qbittorrent() -> GenApp:
    """qBittorrent controller: GET 3, POST 13; query 13; JSON 3; 3 pairs.

    Mirrors qBittorrent's WebUI command API: a login form POST plus a
    command POST per torrent action, and JSON polling GETs."""
    posts = [
        E(name="login", method="POST", path="/login",
          body=(("username", "input"), ("password", "input")),
          body_format="form",
          response={"status": "Ok."}),
    ]
    for cmd in ("pause", "resume", "delete", "deletePerm", "pauseAll",
                "resumeAll", "recheck", "increasePrio", "decreasePrio",
                "topPrio", "bottomPrio"):
        posts.append(
            E(name=f"cmd_{cmd}", method="POST", path=f"/command/{cmd}",
              body=(("hash", "field:selected_hash"),), body_format="form")
        )
    posts.append(
        E(name="add_torrent", method="POST", path="/command/download",
          body=(("urls", "input"),), body_format="form")
    )
    gets = [
        E(name="torrent_list", method="GET", path="/json/torrents",
          response={"torrents": [{"hash": "abcd", "name": "distro.iso",
                                  "progress": 0.5, "state": "downloading"}]},
          reads=("torrents",), store={"torrents": "selected_hash"}),
        E(name="transfer_info", method="GET", path="/json/transferInfo",
          response={"dl_info_speed": 1000, "up_info_speed": 200,
                    "dl_info": "1 MB/s"},
          reads=("dl_info",)),
        E(name="preferences", method="GET", path="/json/preferences",
          response={"save_path": "/downloads", "max_ratio": 2.0,
                    "dht": True},
          reads=("save_path",)),
    ]
    return GenApp(
        key="qbittorrent",
        name="qBittorrent",
        kind="open",
        package="com.qbittorrent.client",
        host="192.168.0.10:8080",
        protocol="HTTP",
        https=False,
        endpoints=gets + posts,
    )


def reddinator() -> GenApp:
    """Reddinator (widget): GET 3, POST 3; JSON 6; 6 pairs."""
    return GenApp(
        key="reddinator",
        name="Reddinator",
        kind="open",
        package="au.com.wallaceit.reddinator",
        host="www.reddit.com",
        protocol="HTTPS",
        endpoints=[
            E(name="feed", method="GET", path="/.json",
              response={"data": {"children": [{"data": {"title": "post",
                                                        "permalink": "/r/x/1"}}],
                        "after": "t3_zz"}},
              reads=("data",)),
            E(name="subreddit_search", method="GET", path="/subreddits/search.json",
              response={"data": {"children": [{"data": {"display_name": "pics"}}]}},
              reads=("data",)),
            E(name="comments", method="GET", path="/r/pics/comments/1.json",
              response={"data": {"children": [{"data": {"body": "nice"}}]}},
              reads=("data",)),
            E(name="login", method="POST", path="/api/login",
              body=(("user", "input"), ("passwd", "input")),
              body_format="json",
              response={"json": {"data": {"modhash": "mh-1",
                                          "cookie": "reddit_session=s"}}},
              reads=("json",), store={"json": "modhash"}),
            E(name="vote", method="POST", path="/api/vote",
              body=(("id", "const:t3_1"), ("dir", "int:1"),
                    ("uh", "field:modhash")),
              body_format="json",
              response={"json": {"errors": []}},
              reads=("json",), requires_login=True),
            E(name="save", method="POST", path="/api/save",
              body=(("id", "const:t3_1"), ("uh", "field:modhash")),
              body_format="json",
              response={"json": {"errors": []}},
              reads=("json",), requires_login=True),
        ],
    )


def twister() -> GenApp:
    """Twister (P2P microblog client): POST 11; query 11; JSON 8; 8 pairs.

    Twister exposes a JSON-RPC-over-HTTP daemon; every call is a POST with
    a form-encoded RPC envelope."""
    rpcs = [
        ("getposts", {"result": [{"userpost": {"msg": "hello", "n": "alice",
                                               "time": 1480000000}}]},
         ("result",)),
        ("getfollowing", {"result": ["bob", "carol"]}, ("result",)),
        ("follow", {"result": None, "error": None}, ("error",)),
        ("unfollow", {"result": None, "error": None}, ("error",)),
        ("newpostmsg", {"result": "ok"}, ("result",)),
        ("getdhtprofile", {"result": {"bio": "hi", "fullname": "Alice"}},
         ("result",)),
        ("dhtget", {"result": [{"p": {"v": {"sig_userpost": "aa"}}}]},
         ("result",)),
        ("getlasthave", {"result": {"alice": 7}}, ("result",)),
        ("getblockcount", None, ()),
        ("getinfo", None, ()),
        ("createwalletuser", None, ()),
    ]
    endpoints = []
    for name, payload, reads in rpcs:
        endpoints.append(
            E(name=name, method="POST", path=f"/rpc/{name}",
              body=(("method", f"const:{name}"), ("params", "input")),
              body_format="form",
              response=payload if payload is not None else {"ok": 1},
              reads=reads)
        )
    return GenApp(
        key="twister",
        name="Twister",
        kind="open",
        package="com.twister.android",
        host="127.0.0.1:28332",
        protocol="HTTP",
        https=False,
        endpoints=endpoints,
    )


def tzm() -> GenApp:
    """TZM: GET 2; JSON 1; 1 pair."""
    return GenApp(
        key="tzm",
        name="TZM",
        kind="open",
        package="org.tzm.android",
        host="www.thezeitgeistmovement.com",
        protocol="HTTPS",
        endpoints=[
            E(name="newsfeed", method="GET", path="/api/news.json",
              response={"articles": [{"title": "chapter news",
                                      "link": "https://tzm.org/a/1"}]},
              reads=("articles",)),
            E(name="banner", method="GET", path="/static/banner.png",
              binary_response=True),
        ],
    )


def wallabag() -> GenApp:
    """Wallabag (read-it-later): GET 1; XML 1; 1 pair."""
    return GenApp(
        key="wallabag",
        name="Wallabag",
        kind="open",
        package="fr.gaulupeau.apps.InThePoche",
        host="v2.wallabag.org",
        protocol="HTTP",
        https=False,
        endpoints=[
            E(name="unread_feed", method="GET", path="/feed/unread",
              query=(("user_id", "int:1"), ("token", "field:feed_token")),
              response_xml=(
                  "<rss><channel><title>wallabag — unread</title>"
                  "<item><title>article</title><link>http://example.org/a</link>"
                  "</item></channel></rss>"
              ),
              xml_reads=("item", "title", "link")),
        ],
    )


ALL_SIMPLE_OPEN = (
    adblock_plus,
    anarxiv,
    blippex,
    diaspora_webclient,
    ifixit,
    lightning,
    qbittorrent,
    reddinator,
    twister,
    tzm,
    wallabag,
)

__all__ = ["ALL_SIMPLE_OPEN"]
