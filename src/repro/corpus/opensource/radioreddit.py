"""radio reddit — the Table 3 case study, hand-written.

Six transactions with the exact dependency structure of the paper:

#1 GET  http://www.reddit.com/api/info.json?                → JSON
#2 GET  http://www.radioreddit.com/<station>/status.json    → JSON (relay…)
#3 POST https://ssl.reddit.com/api/login   user=&passwd=&api_type=json
        → JSON {modhash, cookie, need_https}
#4 POST http://www.reddit.com/api/(unsave|save)   id=…&uh=<modhash>
#5 POST http://www.reddit.com/api/vote   id=…&dir=…&uh=<modhash>
#6 GET  (.*)  — the station relay stream, fed to MediaPlayer

Plus the paper's §5.1 keyword subtlety: the vote direction is built as a
``"dir=" + value`` pair inside a *UI callback* and stored on the heap; a
later event embeds it in #5's body.  With the async-event heuristic off
(the paper's open-source configuration) that one keyword is lost —
"Extractocol identifies all but one [keyword]".
"""

from __future__ import annotations

import json

from ...apk.model import TriggerKind
from ...runtime.httpstack import HttpResponse
from ..base import EndpointTruth
from ..generator import GenApp

MAIN = "com.radioreddit.android.MainActivity"

_STATUS_JSON = {
    "all_listeners": "99999",
    "listeners": "13586",
    "online": "TRUE",
    "playlist": "hiphop",
    "relay": "http://cdn.audiopump.co/radioreddit/hiphop_mp3_128k",
    "songs": {
        "song": [
            {
                "album": "",
                "artist": "stirus",
                "download_url": "http://radioreddit.com/dl/837",
                "genre": "Hip-Hop",
                "id": "837",
                "preview_url": "http://radioreddit.com/pv/837",
                "reddit_title": "stirus(/u/sonus) - Surviving Minds",
                "reddit_url": "http://reddit.com/r/radioreddit/837",
                "redditor": "sonus",
                "score": "6",
                "title": "Surviving Minds",
            }
        ]
    },
}

_LOGIN_JSON = {
    "json": {
        "data": {
            "modhash": "mh-radioreddit-1",
            "cookie": "reddit_session=abc123",
            "need_https": True,
        }
    }
}

_INFO_JSON = {"data": {"children": [{"data": {"id": "t3_837", "likes": True}}]}}


def _build(emitter) -> None:
    cb = emitter.cb
    cls = emitter.main_cls
    cb.field("mModhash", "java.lang.String")
    cb.field("mCookie", "java.lang.String")
    cb.field("mSongFullname", "java.lang.String")
    cb.field("mDirPair", "java.lang.String")
    cb.field("mRelay", "java.lang.String")
    cb.field("mStation", "java.lang.String")

    # -- transaction #1: song info --------------------------------------------
    m1 = cb.method("fetchSongInfo")
    name1 = m1.getfield(m1.this, "mSongFullname", cls=cls)
    url1 = m1.concat("http://www.reddit.com/api/info.json?", "id=", name1)
    req1 = m1.new("org.apache.http.client.methods.HttpGet", [url1])
    client1 = m1.local("client", "org.apache.http.client.HttpClient")
    m1.assign(client1, None)
    resp1 = m1.vcall(client1, "execute", [req1],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body1 = m1.scall("org.apache.http.util.EntityUtils", "toString", [resp1],
                     returns="java.lang.String")
    j1 = m1.new("org.json.JSONObject", [body1])
    d1 = m1.vcall(j1, "getJSONObject", ["data"], returns="org.json.JSONObject")
    ch1 = m1.vcall(d1, "getJSONArray", ["children"], returns="org.json.JSONArray")
    c0 = m1.vcall(ch1, "getJSONObject", [0], returns="org.json.JSONObject")
    cd = m1.vcall(c0, "getJSONObject", ["data"], returns="org.json.JSONObject")
    m1.vcall(cd, "getBoolean", ["likes"], returns="boolean")
    m1.ret_void()
    emitter.add_entrypoint("fetchSongInfo", TriggerKind.UI, "song info")
    emitter.truth.endpoints.append(EndpointTruth(
        name="song info", method="GET", response_body="json"))

    # -- transaction #2: station status (Figure 8) ------------------------------
    m2 = cb.method("fetchStatus")
    station = m2.getfield(m2.this, "mStation", cls=cls)
    sb = m2.new("java.lang.StringBuilder", ["http://www.radioreddit.com/"])
    m2.vcall(sb, "append", [station], returns="java.lang.StringBuilder")
    m2.vcall(sb, "append", ["/status.json"], returns="java.lang.StringBuilder")
    url2 = m2.vcall(sb, "toString", [], returns="java.lang.String")
    req2 = m2.new("org.apache.http.client.methods.HttpGet", [url2])
    client2 = m2.local("client", "org.apache.http.client.HttpClient")
    m2.assign(client2, None)
    resp2 = m2.vcall(client2, "execute", [req2],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body2 = m2.scall("org.apache.http.util.EntityUtils", "toString", [resp2],
                     returns="java.lang.String")
    j2 = m2.new("org.json.JSONObject", [body2])
    relay = m2.vcall(j2, "getString", ["relay"], returns="java.lang.String")
    m2.putfield(m2.this, "mRelay", relay, cls=cls)
    m2.vcall(j2, "getString", ["listeners"], returns="java.lang.String")
    m2.vcall(j2, "getString", ["playlist"], returns="java.lang.String")
    m2.vcall(j2, "getString", ["online"], returns="java.lang.String")
    m2.vcall(j2, "getString", ["all_listeners"], returns="java.lang.String")
    songs = m2.vcall(j2, "getJSONObject", ["songs"], returns="org.json.JSONObject")
    arr = m2.vcall(songs, "getJSONArray", ["song"], returns="org.json.JSONArray")
    song = m2.vcall(arr, "getJSONObject", [0], returns="org.json.JSONObject")
    for key in ("artist", "title", "genre", "id", "reddit_title", "reddit_url",
                "redditor", "download_url", "preview_url"):
        m2.vcall(song, "getString", [key], returns="java.lang.String")
    m2.ret_void()
    emitter.add_entrypoint("fetchStatus", TriggerKind.LIFECYCLE, "station status")
    emitter.truth.endpoints.append(EndpointTruth(
        name="station status", method="GET", response_body="json"))

    # -- transaction #3: login over HTTPS ----------------------------------------
    m3 = cb.method("login", params=["java.lang.String", "java.lang.String"])
    pairs = m3.new("java.util.ArrayList")
    p_user = m3.new("org.apache.http.message.BasicNameValuePair",
                    ["user", m3.param(0)])
    m3.vcall(pairs, "add", [p_user], returns="boolean")
    p_pass = m3.new("org.apache.http.message.BasicNameValuePair",
                    ["passwd", m3.param(1)])
    m3.vcall(pairs, "add", [p_pass], returns="boolean")
    p_type = m3.new("org.apache.http.message.BasicNameValuePair",
                    ["api_type", "json"])
    m3.vcall(pairs, "add", [p_type], returns="boolean")
    entity = m3.new("org.apache.http.client.entity.UrlEncodedFormEntity", [pairs])
    req3 = m3.new("org.apache.http.client.methods.HttpPost",
                  ["https://ssl.reddit.com/api/login"])
    m3.vcall(req3, "setEntity", [entity])
    client3 = m3.local("client", "org.apache.http.client.HttpClient")
    m3.assign(client3, None)
    resp3 = m3.vcall(client3, "execute", [req3],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body3 = m3.scall("org.apache.http.util.EntityUtils", "toString", [resp3],
                     returns="java.lang.String")
    j3 = m3.new("org.json.JSONObject", [body3])
    inner = m3.vcall(j3, "getJSONObject", ["json"], returns="org.json.JSONObject")
    data3 = m3.vcall(inner, "getJSONObject", ["data"], returns="org.json.JSONObject")
    modhash = m3.vcall(data3, "getString", ["modhash"], returns="java.lang.String")
    m3.putfield(m3.this, "mModhash", modhash, cls=cls)
    cookie = m3.vcall(data3, "getString", ["cookie"], returns="java.lang.String")
    m3.putfield(m3.this, "mCookie", cookie, cls=cls)
    m3.vcall(data3, "getBoolean", ["need_https"], returns="boolean")
    m3.ret_void()
    emitter.add_entrypoint("login", TriggerKind.UI, "login")
    emitter.truth.endpoints.append(EndpointTruth(
        name="login", method="POST", request_body="query", response_body="json"))

    # -- a UI callback stores the user-selected vote direction on the heap.
    # The "dir=" keyword is only recoverable across this event boundary with
    # the async heuristic enabled (§5.1's single missed keyword).
    md = cb.method("onDirectionSelected", params=["java.lang.String"])
    pair = md.concat("dir=", md.param(0))
    md.putfield(md.this, "mDirPair", pair, cls=cls)
    md.ret_void()
    emitter.add_entrypoint("onDirectionSelected", TriggerKind.UI, "pick vote direction")

    # -- transaction #4: save / unsave (shared slice → disjunction) ---------------
    m4 = cb.method("saveOrUnsave", params=["boolean"])
    action = m4.local("action", "java.lang.String")
    m4.if_goto(m4.param(0), "==", 0, "UNSAVE")
    m4.assign(action, "save")
    m4.goto("BUILD")
    m4.label("UNSAVE")
    m4.assign(action, "unsave")
    m4.label("BUILD")
    url4 = m4.concat("http://www.reddit.com/api/", action)
    fullname4 = m4.getfield(m4.this, "mSongFullname", cls=cls)
    uh4 = m4.getfield(m4.this, "mModhash", cls=cls)
    body4 = m4.concat("id=", fullname4, "&uh=", uh4)
    entity4 = m4.new("org.apache.http.entity.StringEntity", [body4])
    req4 = m4.new("org.apache.http.client.methods.HttpPost", [url4])
    m4.vcall(req4, "setEntity", [entity4])
    cookie4 = m4.getfield(m4.this, "mCookie", cls=cls)
    m4.vcall(req4, "setHeader", ["Cookie", cookie4])
    client4 = m4.local("client", "org.apache.http.client.HttpClient")
    m4.assign(client4, None)
    resp4 = m4.vcall(client4, "execute", [req4],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body4r = m4.scall("org.apache.http.util.EntityUtils", "toString", [resp4],
                      returns="java.lang.String")
    j4 = m4.new("org.json.JSONObject", [body4r])
    m4.vcall(j4, "getJSONArray", ["jquery"], returns="org.json.JSONArray")
    m4.ret_void()
    emitter.add_entrypoint("saveOrUnsave", TriggerKind.UI, "save song",
                           requires_login=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="save song", method="POST", request_body="query",
        response_body="json", auto_visible=False))

    # -- transaction #5: vote ------------------------------------------------------
    m5 = cb.method("vote")
    fullname5 = m5.getfield(m5.this, "mSongFullname", cls=cls)
    uh5 = m5.getfield(m5.this, "mModhash", cls=cls)
    dirpair = m5.getfield(m5.this, "mDirPair", cls=cls)
    body5 = m5.concat("id=", fullname5, "&", dirpair, "&uh=", uh5)
    entity5 = m5.new("org.apache.http.entity.StringEntity", [body5])
    req5 = m5.new("org.apache.http.client.methods.HttpPost",
                  ["http://www.reddit.com/api/vote"])
    m5.vcall(req5, "setEntity", [entity5])
    cookie5 = m5.getfield(m5.this, "mCookie", cls=cls)
    m5.vcall(req5, "setHeader", ["Cookie", cookie5])
    client5 = m5.local("client", "org.apache.http.client.HttpClient")
    m5.assign(client5, None)
    m5.vcall(client5, "execute", [req5],
             returns="org.apache.http.HttpResponse",
             on="org.apache.http.client.HttpClient")
    m5.ret_void()
    emitter.add_entrypoint("vote", TriggerKind.UI, "vote", requires_login=True)
    emitter.truth.endpoints.append(EndpointTruth(
        name="vote", method="POST", request_body="query",
        auto_visible=False))

    # -- transaction #6: the relay stream into the media player --------------------
    m6 = cb.method("playStream")
    relay6 = m6.getfield(m6.this, "mRelay", cls=cls)
    mp = m6.new("android.media.MediaPlayer")
    m6.vcall(mp, "setDataSource", [relay6])
    m6.vcall(mp, "prepareAsync", [])
    m6.vcall(mp, "start", [])
    m6.ret_void()
    emitter.add_entrypoint("playStream", TriggerKind.UI, "play stream")
    emitter.truth.endpoints.append(EndpointTruth(name="play stream", method="GET"))

    # seed state used by the UI flows
    init = cb.method("onCreate")
    init.putfield(init.this, "mStation", "hiphop", cls=cls)
    init.putfield(init.this, "mSongFullname", "t3_837", cls=cls)
    init.ret_void()
    emitter.add_entrypoint("onCreate", TriggerKind.LIFECYCLE, "launch")


def _routes():
    def status(request, state):
        return HttpResponse.json_response(_STATUS_JSON)

    def info(request, state):
        return HttpResponse.json_response(_INFO_JSON)

    def login(request, state):
        state["session"] = "abc123"
        return HttpResponse.json_response(_LOGIN_JSON)

    def api_action(request, state):
        return HttpResponse.json_response({"jquery": []})

    def stream(request, state):
        return HttpResponse.binary(32768)

    return (
        ("www.radioreddit.com", "GET", r"/\w+/status\.json", status),
        ("www.reddit.com", "GET", r"/api/info\.json", info),
        ("ssl.reddit.com", "POST", r"/api/login", login),
        ("www.reddit.com", "POST", r"/api/(save|unsave|vote)", api_action),
        ("cdn.audiopump.co", "GET", r"/radioreddit/\w+", stream),
    )


def radioreddit() -> GenApp:
    return GenApp(
        key="radioreddit",
        name="radio reddit",
        kind="open",
        package="com.radioreddit.android",
        host="www.radioreddit.com",
        protocol="HTTP(S)",
        https=False,
        endpoints=[],
        custom=_build,
        extra_routes=_routes(),
        filler_methods=16,
        notes="Table 3 / Figure 8 case study.",
    )


__all__ = ["radioreddit"]
