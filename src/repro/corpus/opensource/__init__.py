"""Open-source corpus apps (the F-Droid set of Table 1)."""

from .diode import diode
from .radioreddit import radioreddit
from .simple import ALL_SIMPLE_OPEN
from .weather import weather_notification

__all__ = ["ALL_SIMPLE_OPEN", "diode", "radioreddit", "weather_notification"]
