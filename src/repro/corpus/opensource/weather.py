"""Weather Notification — the §3.4 asynchronous-event example, hand-written.

"A weather notification app sets its location inside a callback invoked by
a location service.  It constructs a part of query string that contains
city names and GPS locations into a heap object.  Later, another event,
such as a user click, actually reads the object to generate an HTTP
request."

With the async-event heuristic disabled (the open-source configuration)
the location part of the query string degrades to a wildcard; the two
messages themselves are still identified (Table 1: 2 / 2 / 2).
"""

from __future__ import annotations

from ...apk.model import TriggerKind
from ...runtime.httpstack import HttpResponse
from ..base import EndpointTruth
from ..generator import GenApp

_FORECAST_XML = (
    "<weatherdata><location><name>Seoul</name></location>"
    "<forecast><time><temperature value=\"21\" unit=\"celsius\"/>"
    "<symbol name=\"clear sky\"/></time></forecast></weatherdata>"
)
_ALERTS_XML = (
    "<alerts><alert><severity>minor</severity>"
    "<headline>wind advisory</headline></alert></alerts>"
)


def _build(emitter) -> None:
    cb = emitter.cb
    cls = emitter.main_cls
    cb.field("mLocationQuery", "java.lang.String")

    # Location-service callback: builds the query-string fragment on the heap.
    cbm = cb.method("onLocationChanged", params=["android.location.Location"])
    lat = cbm.vcall(cbm.param(0), "getLatitude", [], returns="double")
    lon = cbm.vcall(cbm.param(0), "getLongitude", [], returns="double")
    fragment = cbm.concat("lat=", lat, "&lon=", lon)
    cbm.putfield(cbm.this, "mLocationQuery", fragment, cls=cls)
    cbm.ret_void()
    emitter.add_entrypoint("onLocationChanged", TriggerKind.LOCATION,
                           "location update")

    # User-triggered refresh: embeds the heap fragment into the URI.
    m = cb.method("refreshForecast")
    frag = m.getfield(m.this, "mLocationQuery", cls=cls)
    url = m.concat("http://api.openweathermap.org/data/2.5/forecast?", frag,
                   "&mode=xml")
    req = m.new("org.apache.http.client.methods.HttpGet", [url])
    client = m.local("client", "org.apache.http.client.HttpClient")
    m.assign(client, None)
    resp = m.vcall(client, "execute", [req],
                   returns="org.apache.http.HttpResponse",
                   on="org.apache.http.client.HttpClient")
    body = m.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                   returns="java.lang.String")
    dbf = m.scall("javax.xml.parsers.DocumentBuilderFactory", "newInstance", [],
                  returns="javax.xml.parsers.DocumentBuilderFactory")
    builder = m.vcall(dbf, "newDocumentBuilder", [],
                      returns="javax.xml.parsers.DocumentBuilder")
    doc = m.vcall(builder, "parse", [body], returns="org.w3c.dom.Document")
    temps = m.vcall(doc, "getElementsByTagName", ["temperature"],
                    returns="org.w3c.dom.NodeList")
    temp = m.vcall(temps, "item", [0], returns="org.w3c.dom.Element")
    m.vcall(temp, "getAttribute", ["value"], returns="java.lang.String")
    syms = m.vcall(doc, "getElementsByTagName", ["symbol"],
                   returns="org.w3c.dom.NodeList")
    sym = m.vcall(syms, "item", [0], returns="org.w3c.dom.Element")
    m.vcall(sym, "getAttribute", ["name"], returns="java.lang.String")
    m.ret_void()
    emitter.add_entrypoint("refreshForecast", TriggerKind.UI, "refresh")
    emitter.truth.endpoints.append(EndpointTruth(
        name="refresh", method="GET", response_body="xml"))

    # Severe-weather alerts: a plain static-URI fetch.
    m2 = cb.method("fetchAlerts")
    req2 = m2.new(
        "org.apache.http.client.methods.HttpGet",
        ["http://api.openweathermap.org/data/2.5/alerts.xml"],
    )
    client2 = m2.local("client", "org.apache.http.client.HttpClient")
    m2.assign(client2, None)
    resp2 = m2.vcall(client2, "execute", [req2],
                     returns="org.apache.http.HttpResponse",
                     on="org.apache.http.client.HttpClient")
    body2 = m2.scall("org.apache.http.util.EntityUtils", "toString", [resp2],
                     returns="java.lang.String")
    dbf2 = m2.scall("javax.xml.parsers.DocumentBuilderFactory", "newInstance", [],
                    returns="javax.xml.parsers.DocumentBuilderFactory")
    builder2 = m2.vcall(dbf2, "newDocumentBuilder", [],
                        returns="javax.xml.parsers.DocumentBuilder")
    doc2 = m2.vcall(builder2, "parse", [body2], returns="org.w3c.dom.Document")
    sev = m2.vcall(doc2, "getElementsByTagName", ["severity"],
                   returns="org.w3c.dom.NodeList")
    el = m2.vcall(sev, "item", [0], returns="org.w3c.dom.Element")
    m2.vcall(el, "getTextContent", [], returns="java.lang.String")
    m2.ret_void()
    emitter.add_entrypoint("fetchAlerts", TriggerKind.UI, "alerts")
    emitter.truth.endpoints.append(EndpointTruth(
        name="alerts", method="GET", response_body="xml"))


def _routes():
    return (
        ("api.openweathermap.org", "GET", r"/data/2\.5/forecast",
         lambda req, state: HttpResponse.xml_response(_FORECAST_XML)),
        ("api.openweathermap.org", "GET", r"/data/2\.5/alerts\.xml",
         lambda req, state: HttpResponse.xml_response(_ALERTS_XML)),
    )


def weather_notification() -> GenApp:
    return GenApp(
        key="weather",
        name="Weather Notification",
        kind="open",
        package="ru.gelin.android.weather.notification",
        host="api.openweathermap.org",
        protocol="HTTP",
        https=False,
        endpoints=[],
        custom=_build,
        extra_routes=_routes(),
        filler_methods=10,
        notes="§3.4 asynchronous-event example.",
    )


__all__ = ["weather_notification"]
