"""The evaluation corpus: 14 open-source + 20 closed-source apps (Table 1).

Usage::

    from repro.corpus import app_keys, build_app, get_spec

    apk = build_app("diode")
    spec = get_spec("ted")
    network = spec.build_network()
"""

from __future__ import annotations

from ..apk.model import Apk
from .base import AppSpec, EndpointTruth, GroundTruth
from .closedsource import all_fleet_apps, kayak, ted
from .generator import GenApp, GenEndpoint, build_generated_app
from .lineage import (
    BuiltVersion,
    LineageVersion,
    build_version,
    lineage,
    lineage_keys,
    lineages,
)
from .opensource import ALL_SIMPLE_OPEN, diode, radioreddit, weather_notification

_REGISTRY: dict[str, AppSpec] | None = None


def registry() -> dict[str, AppSpec]:
    """All corpus app specs, keyed by app key (built lazily and cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        specs: list[AppSpec] = []
        for factory in ALL_SIMPLE_OPEN:
            specs.append(build_generated_app(factory()))
        specs.append(build_generated_app(diode()))
        specs.append(build_generated_app(radioreddit()))
        specs.append(build_generated_app(weather_notification()))
        specs.append(build_generated_app(ted()))
        specs.append(build_generated_app(kayak()))
        for gen in all_fleet_apps():
            specs.append(build_generated_app(gen))
        _REGISTRY = {s.key: s for s in specs}
    return _REGISTRY


def get_spec(key: str) -> AppSpec:
    if key.startswith("syn-"):
        # synthesized apps are compiled from their self-describing key, not
        # registered — any process can materialise them without shared state
        from ..synth import synth_spec

        return synth_spec(key)
    try:
        return registry()[key]
    except KeyError:
        raise KeyError(
            f"unknown corpus app {key!r}; available: {sorted(registry())}"
        ) from None


def build_app(key: str) -> Apk:
    """Build the APK model for a corpus app."""
    return get_spec(key).build_apk()


def app_keys(kind: str | None = None) -> list[str]:
    """Corpus app keys, optionally filtered by kind ("open"/"closed")."""
    return sorted(
        k for k, s in registry().items() if kind is None or s.kind == kind
    )


__all__ = [
    "AppSpec",
    "BuiltVersion",
    "EndpointTruth",
    "GenApp",
    "GenEndpoint",
    "GroundTruth",
    "LineageVersion",
    "app_keys",
    "build_app",
    "build_generated_app",
    "build_version",
    "get_spec",
    "lineage",
    "lineage_keys",
    "lineages",
    "registry",
]
