"""Compile signature terms to regular expressions (paper §3.2).

"The regex format of a variable object is derived from its type (e.g.
[0-9]+ for integer variables and .* for string variables).  Repetitions
(rep) and disjunctions (∨) are respectively converted into the Kleene star
and | in regular expressions."  JSON/XML trees compile to a permissive
pattern for display; structural matching of bodies uses
:mod:`repro.signature.matcher` on the tree itself.
"""

from __future__ import annotations

import re

from .lang import (
    Alt,
    Concat,
    Const,
    JsonArray,
    JsonObject,
    Rep,
    Term,
    Unknown,
    XmlElement,
)

_KIND_REGEX = {
    "str": ".*",
    "any": ".*",
    "url": "\\S+",
    "int": "[0-9]+",
    "float": "[0-9]+(?:\\.[0-9]+)?",
    "bool": "(?:true|false|0|1)",
}


def to_regex(term: Term, *, anchored: bool = True) -> str:
    """Compile ``term`` to a regex string."""
    body = _compile(term)
    return f"^{body}$" if anchored else body


def compile_regex(term: Term) -> "re.Pattern[str]":
    return re.compile(to_regex(term), re.DOTALL)


def _compile(term: Term) -> str:
    if isinstance(term, Const):
        return re.escape(term.text)
    if isinstance(term, Unknown):
        return _KIND_REGEX[term.kind]
    if isinstance(term, Concat):
        return "".join(_group(_compile(p), p) for p in term.parts)
    if isinstance(term, Alt):
        return "(?:" + "|".join(_compile(o) for o in term.options) + ")"
    if isinstance(term, Rep):
        return "(?:" + _compile(term.body) + ")*"
    if isinstance(term, JsonObject):
        # Display/matching fallback: require each constant key to appear.
        keys = [k for k, _ in term.entries if isinstance(k, Const)]
        if not keys:
            return "\\{.*\\}"
        lookaheads = "".join(f'(?=.*"{re.escape(k.text)}")' for k in keys)
        return lookaheads + "\\{.*\\}"
    if isinstance(term, JsonArray):
        return "\\[.*\\]"
    if isinstance(term, XmlElement):
        return f"<{re.escape(term.tag)}.*</{re.escape(term.tag)}>"
    raise TypeError(f"cannot compile {type(term).__name__} to regex")


def _group(compiled: str, part: Term) -> str:
    """Wrap alternations so concatenation binds tighter than ``|``."""
    if isinstance(part, Alt):
        return compiled  # already grouped with (?:...)
    return compiled


def wildcard_fraction(term: Term) -> float:
    """Fraction of the compiled pattern that is wildcard rather than
    literal — a crude signature-quality indicator used in diagnostics."""
    const_len = sum(
        len(t.text) for t in term.walk() if isinstance(t, Const)
    )
    unknowns = sum(1 for t in term.walk() if isinstance(t, Unknown))
    total = const_len + unknowns * 4
    if total == 0:
        return 1.0
    return (unknowns * 4) / total


__all__ = ["compile_regex", "to_regex", "wildcard_fraction"]
