"""The intermediate signature language (paper Figure 4).

Signatures are trees over:

* ``Const``   — a string literal the program writes verbatim,
* ``Unknown`` — a value not statically determined, with a type hint that
  drives the regex class (``[0-9]+`` for integers, ``.*`` for strings) and
  a *provenance* tag (user input, resource, database, a prior response
  field, ...) powering inter-transaction dependency analysis,
* ``Concat``  — ordered concatenation,
* ``Alt``     — disjunction (∨) introduced at control-flow confluences,
* ``Rep``     — repetition introduced at loop headers/latches,
* ``JsonObject`` / ``JsonArray`` — structured JSON bodies,
* ``XmlElement`` — structured XML bodies.

Smart constructors (:func:`concat`, :func:`alt`, :func:`rep`) normalise as
they build: literal runs merge, nested concats flatten, duplicate branches
collapse — keeping signatures canonical so equality tests and regex
compilation stay simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: Unknown kind → semantic value class
KINDS = ("str", "int", "float", "bool", "any", "url")


class Term:
    """Base class of signature terms.  Terms are immutable and hashable."""

    __slots__ = ()

    def walk(self) -> Iterator["Term"]:
        yield self

    def is_constant(self) -> bool:
        """True when the term contains no Unknown parts."""
        return all(not isinstance(t, Unknown) for t in self.walk())


@dataclass(frozen=True)
class Const(Term):
    text: str

    def __str__(self) -> str:
        return f"({self.text})"


@dataclass(frozen=True)
class Unknown(Term):
    kind: str = "str"
    #: where the value comes from: "user_input", "resource", "database",
    #: "location", "device", "response:<txn>:<path>", ... or None
    origin: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"bad Unknown kind {self.kind!r}")

    def __str__(self) -> str:
        return f"<?{self.kind}{':' + self.origin if self.origin else ''}>"


@dataclass(frozen=True)
class Concat(Term):
    parts: tuple[Term, ...]

    def walk(self) -> Iterator[Term]:
        yield self
        for p in self.parts:
            yield from p.walk()

    def __str__(self) -> str:
        return "".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Alt(Term):
    options: tuple[Term, ...]

    def walk(self) -> Iterator[Term]:
        yield self
        for o in self.options:
            yield from o.walk()

    def __str__(self) -> str:
        return "(" + " | ".join(str(o) for o in self.options) + ")"


@dataclass(frozen=True)
class Rep(Term):
    body: Term

    def walk(self) -> Iterator[Term]:
        yield self
        yield from self.body.walk()

    def __str__(self) -> str:
        return f"{{{self.body}}}*"


@dataclass(frozen=True)
class JsonObject(Term):
    """A JSON object; entries are (key term, value term) pairs in program
    order.  ``open_`` marks objects that may carry additional, unobserved
    keys (always true for response access trees)."""

    entries: tuple[tuple[Term, Term], ...] = ()
    open_: bool = False

    def walk(self) -> Iterator[Term]:
        yield self
        for k, v in self.entries:
            yield from k.walk()
            yield from v.walk()

    def get(self, key: str) -> Term | None:
        for k, v in self.entries:
            if isinstance(k, Const) and k.text == key:
                return v
        return None

    def with_entry(self, key: Term, value: Term) -> "JsonObject":
        out = []
        replaced = False
        for k, v in self.entries:
            if k == key:
                out.append((k, value))
                replaced = True
            else:
                out.append((k, v))
        if not replaced:
            out.append((key, value))
        return JsonObject(tuple(out), self.open_)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.entries)
        suffix = ", ..." if self.open_ else ""
        return "{" + inner + suffix + "}"


@dataclass(frozen=True)
class JsonArray(Term):
    """A JSON array: ``fixed`` prefix elements plus an optional repeated
    element pattern (arrays built in loops, or accessed by index)."""

    fixed: tuple[Term, ...] = ()
    elem: Term | None = None

    def walk(self) -> Iterator[Term]:
        yield self
        for f in self.fixed:
            yield from f.walk()
        if self.elem is not None:
            yield from self.elem.walk()

    def __str__(self) -> str:
        parts = [str(f) for f in self.fixed]
        if self.elem is not None:
            parts.append(f"{self.elem}*")
        return "[" + ", ".join(parts) + "]"


@dataclass(frozen=True)
class XmlElement(Term):
    tag: str
    attrs: tuple[tuple[str, Term], ...] = ()
    children: tuple[Term, ...] = ()
    text: Term | None = None

    def walk(self) -> Iterator[Term]:
        yield self
        for _, v in self.attrs:
            yield from v.walk()
        for c in self.children:
            yield from c.walk()
        if self.text is not None:
            yield from self.text.walk()

    def __str__(self) -> str:
        attrs = "".join(f" {k}={v}" for k, v in self.attrs)
        inner = "".join(str(c) for c in self.children)
        if self.text is not None:
            inner += str(self.text)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


UNKNOWN_STR = Unknown("str")
UNKNOWN_INT = Unknown("int")
UNKNOWN_ANY = Unknown("any")
EMPTY = Const("")

_MAX_ALT_OPTIONS = 24


def concat(*parts: Term) -> Term:
    """Concatenate, flattening nested concats and merging literal runs."""
    flat: list[Term] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    out: list[Term] = []
    for part in flat:
        if isinstance(part, Const) and not part.text:
            continue
        if out and isinstance(out[-1], Const) and isinstance(part, Const):
            out[-1] = Const(out[-1].text + part.text)
        else:
            out.append(part)
    if not out:
        return EMPTY
    if len(out) == 1:
        return out[0]
    return Concat(tuple(out))


def alt(*options: Term) -> Term:
    """Disjunction, flattening nested alts and deduplicating branches.

    When the option count explodes (heavily branchy code), the disjunction
    degrades to a single ``Unknown`` — the conservative expression the
    paper's language permits."""
    flat: list[Term] = []
    for option in options:
        if isinstance(option, Alt):
            flat.extend(option.options)
        else:
            flat.append(option)
    seen: list[Term] = []
    for option in flat:
        if option not in seen:
            seen.append(option)
    if not seen:
        return EMPTY
    if len(seen) == 1:
        return seen[0]
    if len(seen) > _MAX_ALT_OPTIONS:
        return UNKNOWN_STR
    return Alt(tuple(seen))


def rep(body: Term) -> Term:
    if isinstance(body, Rep):
        return body
    if isinstance(body, Const) and not body.text:
        return EMPTY
    return Rep(body)


def constant_keywords(term: Term) -> list[str]:
    """All constant keyword strings in a signature: JSON/XML keys, tags and
    attributes plus query-string keys — the unit Figure 7 counts."""
    out: list[str] = []

    def visit(t: Term) -> None:
        if isinstance(t, JsonObject):
            for k, v in t.entries:
                if isinstance(k, Const) and k.text:
                    out.append(k.text)
                visit(v)
        elif isinstance(t, JsonArray):
            for f in t.fixed:
                visit(f)
            if t.elem is not None:
                visit(t.elem)
        elif isinstance(t, XmlElement):
            out.append(t.tag)
            for name, v in t.attrs:
                out.append(name)
                visit(v)
            for c in t.children:
                visit(c)
            if t.text is not None:
                visit(t.text)
        elif isinstance(t, Concat):
            for p in t.parts:
                visit(p)
        elif isinstance(t, Alt):
            for o in t.options:
                visit(o)
        elif isinstance(t, Rep):
            visit(t.body)
        elif isinstance(t, Const):
            # query-string style: extract keys from k=v& fragments
            import re as _re

            for match in _re.finditer(r"([A-Za-z_][\w.\-]*)=", t.text):
                out.append(match.group(1))

    visit(term)
    return out


def origins_of(term: Term) -> set[str]:
    """Provenance tags of every Unknown inside ``term``."""
    return {
        t.origin
        for t in term.walk()
        if isinstance(t, Unknown) and t.origin is not None
    }


__all__ = [
    "Alt",
    "Concat",
    "Const",
    "EMPTY",
    "JsonArray",
    "JsonObject",
    "KINDS",
    "Rep",
    "Term",
    "UNKNOWN_ANY",
    "UNKNOWN_INT",
    "UNKNOWN_STR",
    "Unknown",
    "XmlElement",
    "alt",
    "concat",
    "constant_keywords",
    "origins_of",
    "rep",
]
