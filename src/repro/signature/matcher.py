"""Match signatures against captured traffic (paper §5.1 methodology).

Three measurements:

* **validity** — does each signature regex/tree produce a valid match on
  the corresponding traffic ("all such signatures generated a valid match
  with the actual traffic trace"),
* **keywords** — constant keywords present in traffic vs. in signatures
  (Figure 7's unit: "keys in key-value pairs of query string, JSON bodies,
  the tags and attributes in XML bodies"),
* **byte accounting** — Rk / Rv / Rn fractions (Table 2): bytes matched by
  constant keywords, by the corresponding value wildcards, and bytes whose
  key and value are both wildcards.
"""

from __future__ import annotations

import json
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlsplit

from ..deps.transactions import Transaction
from .lang import Const, JsonArray, JsonObject, Term, Unknown
from .regex import compile_regex


# ------------------------------------------------------------------ matching
def uri_matches(txn: Transaction, url: str) -> bool:
    try:
        return compile_regex(txn.request.uri).match(url) is not None
    except re.error:
        return False


def _sig_keys(term: Term | None) -> set[str]:
    """Constant JSON keys at any depth of a signature tree."""
    if term is None:
        return set()
    out: set[str] = set()
    for t in term.walk():
        if isinstance(t, JsonObject):
            for k, _ in t.entries:
                if isinstance(k, Const):
                    out.add(k.text)
    return out


def _json_keys(data) -> set[str]:
    out: set[str] = set()
    if isinstance(data, dict):
        for k, v in data.items():
            out.add(k)
            out |= _json_keys(v)
    elif isinstance(data, list):
        for item in data:
            out |= _json_keys(item)
    return out


def body_matches(term: Term | None, body: str | None, kind: str | None) -> bool:
    """Structural body match: every constant signature key appears in the
    traffic body (signature trees are open — extra traffic keys are fine)."""
    if term is None:
        return True
    if not body:
        return False
    keys = _sig_keys(term)
    if keys:
        try:
            data = json.loads(body)
        except ValueError:
            return all(k in body for k in keys)
        return keys <= _json_keys(data)
    try:
        return compile_regex(term).match(body) is not None
    except re.error:
        return False


def transaction_matches(txn: Transaction, method: str, url: str,
                        body: str | None = None) -> bool:
    if txn.request.method != method:
        return False
    if not uri_matches(txn, url):
        return False
    return body_matches(txn.request.body, body, txn.request.body_kind)


def match_trace(transactions: list[Transaction], trace) -> dict[int, list]:
    """Map each signature (txn_id) to the captured transactions it matches."""
    out: dict[int, list] = {t.txn_id: [] for t in transactions}
    for captured in trace:
        for txn in transactions:
            if transaction_matches(
                txn, captured.request.method, captured.request.url,
                captured.request.body,
            ):
                out[txn.txn_id].append(captured)
    return out


# ---------------------------------------------------------------- keywords
def traffic_keywords(method_url_body: tuple[str, str, str | None],
                     response_body: str | None = None,
                     response_type: str = "") -> tuple[set[str], set[str]]:
    """(request keywords, response keywords) of one captured transaction."""
    _, url, body = method_url_body
    request_kws: set[str] = set()
    for k, _ in parse_qsl(urlsplit(url).query, keep_blank_values=True):
        request_kws.add(k)
    if body:
        request_kws |= _body_keywords(body)
    response_kws = _body_keywords(response_body) if response_body else set()
    return request_kws, response_kws


def _body_keywords(body: str) -> set[str]:
    body = body.strip()
    if not body:
        return set()
    if body.startswith(("{", "[")):
        try:
            return _json_keys(json.loads(body))
        except ValueError:
            pass
    if body.startswith("<"):
        try:
            root = ET.fromstring(body)
        except ET.ParseError:
            return set()
        out: set[str] = set()
        for elem in root.iter():
            out.add(elem.tag)
            out.update(elem.keys())
        return out
    return {k for k, _ in parse_qsl(body, keep_blank_values=True)}


def signature_keywords(txn: Transaction) -> tuple[set[str], set[str]]:
    """(request, response) constant keywords of one signature."""
    return set(txn.request.keywords), set(txn.response.keywords)


# ----------------------------------------------------------- byte accounting
@dataclass
class ByteAccount:
    """Rk / Rv / Rn byte counts (Table 2)."""

    rk: int = 0  # bytes matched by constant keywords of the signature
    rv: int = 0  # bytes matched by the keywords' value wildcards
    rn: int = 0  # bytes whose key and value are both wildcards

    @property
    def total(self) -> int:
        return self.rk + self.rv + self.rn

    def fractions(self) -> tuple[float, float, float]:
        total = self.total
        if not total:
            return (0.0, 0.0, 0.0)
        return (self.rk / total, self.rv / total, self.rn / total)

    def add(self, other: "ByteAccount") -> None:
        self.rk += other.rk
        self.rv += other.rv
        self.rn += other.rn


def account_query_string(sig_keys: set[str], qs: str) -> ByteAccount:
    acct = ByteAccount()
    for k, v in parse_qsl(qs, keep_blank_values=True):
        if k in sig_keys:
            acct.rk += len(k) + 1  # key plus '='
            acct.rv += len(v)
        else:
            acct.rn += len(k) + 1 + len(v)
    return acct


def account_json(term: Term | None, body: str) -> ByteAccount:
    acct = ByteAccount()
    try:
        data = json.loads(body)
    except ValueError:
        return acct
    _account_json_node(term, data, acct)
    return acct


def _term_at_key(term: Term | None, key: str) -> tuple[bool, Term | None]:
    if isinstance(term, JsonObject):
        for k, v in term.entries:
            if isinstance(k, Const) and k.text == key:
                return True, v
    return False, None


def _elem_term(term: Term | None) -> Term | None:
    if isinstance(term, JsonArray):
        if term.elem is not None:
            return term.elem
        if term.fixed:
            return term.fixed[0]
    return None


def _json_bytes(value) -> int:
    return len(json.dumps(value, separators=(",", ":")))


def _account_json_node(term: Term | None, data, acct: ByteAccount) -> None:
    if isinstance(data, dict):
        for key, value in data.items():
            known, child = _term_at_key(term, key)
            if known:
                acct.rk += len(key) + 2  # quoted key
                if isinstance(value, (dict, list)) and child is not None:
                    _account_json_node(child, value, acct)
                else:
                    acct.rv += _json_bytes(value)
            else:
                acct.rn += len(key) + 2 + _json_bytes(value)
    elif isinstance(data, list):
        child = _elem_term(term)
        for item in data:
            if child is not None:
                _account_json_node(child, item, acct)
            else:
                acct.rn += _json_bytes(item)
    else:
        # scalar under a known position
        acct.rv += _json_bytes(data)


def account_request(txn: Transaction, url: str, body: str | None) -> ByteAccount:
    """Byte accounting for one request's query string + body."""
    acct = ByteAccount()
    sig_keys = set(txn.request.keywords)
    qs = urlsplit(url).query
    if qs:
        acct.add(account_query_string(sig_keys, qs))
    if body:
        stripped = body.strip()
        if stripped.startswith(("{", "[")):
            acct.add(account_json(txn.request.body, stripped))
        else:
            acct.add(account_query_string(sig_keys, stripped))
    return acct


def account_response(txn: Transaction, body: str | None) -> ByteAccount:
    acct = ByteAccount()
    if body and body.strip().startswith(("{", "[")):
        acct.add(account_json(txn.response.body, body.strip()))
    return acct


__all__ = [
    "ByteAccount",
    "account_json",
    "account_query_string",
    "account_request",
    "account_response",
    "body_matches",
    "match_trace",
    "signature_keywords",
    "traffic_keywords",
    "transaction_matches",
    "uri_matches",
]
