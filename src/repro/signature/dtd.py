"""Render XML signature trees as Document Type Definitions (paper §1:
"... such as Document Type Definition (DTD) for XML").

XML response formats are inferred as access trees (tags and attributes the
app touches); the DTD renderer emits one ``<!ELEMENT>`` declaration per
observed tag and ``<!ATTLIST>`` declarations for observed attributes.
"""

from __future__ import annotations

from ..semantics.avals import ResponseAccumulator
from .lang import Const, JsonObject, Term, Unknown, XmlElement


def xml_tree_from_accumulator(acc: ResponseAccumulator) -> XmlElement | None:
    """Convert an XML response access tree into nested XmlElements."""
    if acc.kind != "xml" or not acc.root:
        return None

    def build(name: str, node: dict) -> XmlElement:
        attrs = []
        children = []
        text = None
        for (tag, child_name), child in node.items():
            if tag == "leaf":
                text = Unknown("str")
            elif str(child_name).startswith("@"):
                attrs.append((str(child_name)[1:], Unknown("str")))
            else:
                children.append(build(str(child_name), child))
        return XmlElement(name, tuple(attrs), tuple(children), text)

    roots = [
        build(str(name), child)
        for (tag, name), child in acc.root.items()
        if tag == "obj"
    ]
    if len(roots) == 1:
        return roots[0]
    return XmlElement("document", (), tuple(roots))


def to_dtd(root: Term) -> str:
    """Emit a DTD describing the element structure of an XML signature."""
    if isinstance(root, JsonObject):
        raise TypeError("to_dtd expects an XmlElement tree, not a JSON tree")
    if not isinstance(root, XmlElement):
        raise TypeError(f"cannot render {type(root).__name__} as DTD")
    elements: dict[str, XmlElement] = {}

    def visit(elem: XmlElement) -> None:
        if elem.tag not in elements:
            elements[elem.tag] = elem
        for child in elem.children:
            if isinstance(child, XmlElement):
                visit(child)

    visit(root)

    lines = []
    for tag, elem in elements.items():
        child_tags = [
            c.tag for c in elem.children if isinstance(c, XmlElement)
        ]
        if child_tags:
            # tags observed via access trees may repeat: allow * multiplicity
            content = ", ".join(f"{t}*" for t in dict.fromkeys(child_tags))
            lines.append(f"<!ELEMENT {tag} ({content})>")
        elif elem.text is not None:
            lines.append(f"<!ELEMENT {tag} (#PCDATA)>")
        else:
            lines.append(f"<!ELEMENT {tag} ANY>")
        for attr_name, _ in elem.attrs:
            lines.append(f"<!ATTLIST {tag} {attr_name} CDATA #IMPLIED>")
    return "\n".join(lines)


__all__ = ["to_dtd", "xml_tree_from_accumulator"]
