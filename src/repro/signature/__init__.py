"""Signature extraction: the intermediate language (Fig. 4), the
flow-sensitive builder (§3.2), regex/JSON-schema/DTD renderers and the
traffic matcher.

The builder re-exports are lazy: ``repro.signature.builder`` depends on
``repro.semantics``, whose abstract values in turn use the signature
language — importing the language must not drag the builder in.
"""

from typing import Any

from .lang import (
    Alt,
    Concat,
    Const,
    JsonArray,
    JsonObject,
    Rep,
    Term,
    Unknown,
    XmlElement,
    alt,
    concat,
    constant_keywords,
    origins_of,
    rep,
)
from .regex import compile_regex, to_regex, wildcard_fraction

_LAZY = {
    "InterpResult": ("repro.signature.builder", "InterpResult"),
    "SignatureInterpreter": ("repro.signature.builder", "SignatureInterpreter"),
    "TxnRecord": ("repro.signature.builder", "TxnRecord"),
    "detect_rep": ("repro.signature.builder", "detect_rep"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.signature' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "Alt", "Concat", "Const", "InterpResult", "JsonArray", "JsonObject",
    "Rep", "SignatureInterpreter", "Term", "TxnRecord", "Unknown",
    "XmlElement", "alt", "compile_regex", "concat", "constant_keywords",
    "detect_rep", "origins_of", "rep", "to_regex", "wildcard_fraction",
]
