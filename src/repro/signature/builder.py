"""Flow-sensitive signature building (paper §3.2).

The builder abstractly interprets the program — scoped to the methods the
network-aware slices identified — maintaining a *signature database* that
maps each variable to its signature term per basic block.  Statements are
processed in topological order of the intra-procedural CFG; at confluence
points the databases merge with disjunction (∨), and at loop headers the
loop-variant part of a string is marked repeatable (``rep``), exactly the
algorithm the paper describes in place of a classic fixed-point worklist.

Demarcation-point arrivals during interpretation record HTTP transactions:
the request object's assembled :class:`~repro.semantics.avals.RequestAV`
becomes the request signature, and a fresh
:class:`~repro.semantics.avals.ResponseAccumulator` collects the response
format from the fields the program subsequently reads — pairing requests
with responses *by construction* (context-sensitive evaluation resolves the
shared-demarcation-point ambiguity of paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.resources import Resources
from ..cfg.callgraph import CallGraph
from ..cfg.cfg import cfg_of
from ..cfg.dominators import loop_info, reverse_postorder
from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import (
    AssignStmt,
    IdentityStmt,
    InvokeStmt,
    ReturnStmt,
    Stmt,
    StmtRef,
)
from ..ir.values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    DoubleConst,
    InstanceFieldRef,
    InstanceOfExpr,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    NewArrayExpr,
    NewExpr,
    NullConst,
    ParamRef,
    StaticFieldRef,
    StringConst,
    ThisRef,
    UnOpExpr,
    Value,
)
from ..obs.tracer import NULL_SPAN
from ..semantics.avals import (
    AppObjAV,
    AVal,
    NULL_AV,
    NumAV,
    ObjAV,
    RequestAV,
    RespRef,
    ResponseAccumulator,
    canon,
    merge_avals,
    to_term,
)
from ..semantics.model import Effect, SemanticModel, UNHANDLED, default_model
from .lang import (
    Concat,
    Const,
    JsonArray,
    Rep,
    Term,
    UNKNOWN_ANY,
    Unknown,
    alt,
    concat,
    rep,
)

_MAX_DEPTH = 24
_ENTRY_ORIGINS = {
    "ui": "user_input",
    "ui_custom": "user_input",
    "timer": None,
    "server_push": "server",
    "location": "location",
    "intent": "intent",
    "lifecycle": None,
}


@dataclass
class TxnRecord:
    """One reconstructed HTTP transaction (request + paired response)."""

    txn_id: int
    site: StmtRef
    root: str
    request: RequestAV
    acc: ResponseAccumulator | None = None
    consumer: str | None = None
    dp_class: str = ""

    @property
    def response_term(self) -> Term | None:
        return self.acc.to_term() if self.acc is not None else None


class ConnRecord:
    """Mutable HttpURLConnection state (see http_urlconn model)."""

    def __init__(self, conn_id: int, url: Term) -> None:
        self.conn_id = conn_id
        self.url = url
        self.method: str = "GET"
        self.headers: list[tuple[str, Term]] = []
        self.body_parts: list[Term] = []
        self.body_origins: set[str] = set()
        self._resp: RespRef | None = None

    def to_request(self) -> RequestAV:
        body = concat(*self.body_parts) if self.body_parts else None
        return RequestAV(
            methods=frozenset({self.method}),
            uri=self.url,
            headers=tuple(self.headers),
            body=body,
            body_origins=frozenset(self.body_origins),
        )

    def finalize(self, ctx: "SignatureInterpreter", site: StmtRef) -> RespRef | None:
        if self._resp is None:
            self._resp = ctx.record_transaction(site, self.to_request())
        return self._resp


@dataclass
class InterpResult:
    transactions: list[TxnRecord] = field(default_factory=list)
    #: heap cells observed: (class, field) -> merged term (diagnostics)
    field_terms: dict[tuple[str, str], Term] = field(default_factory=dict)
    evaluated_methods: set[str] = field(default_factory=set)


class _Frame:
    __slots__ = ("method", "env", "returns")

    def __init__(self, method: Method) -> None:
        self.method = method
        self.env: dict[str, AVal] = {}
        self.returns: list[AVal] = []


class SignatureInterpreter:
    """Implements :class:`~repro.semantics.model.InterpServices`."""

    def __init__(
        self,
        program: Program,
        callgraph: CallGraph,
        *,
        model: SemanticModel | None = None,
        resources: Resources | None = None,
        relevant_methods: set[str] | None = None,
        blocked_field_stores: set[StmtRef] | None = None,
        rounds: int = 2,
        index=None,
    ) -> None:
        self.program = program
        self.callgraph = callgraph
        self.model = model or default_model()
        self.resources = resources or Resources()
        self.relevant_methods = relevant_methods
        self.blocked_field_stores = blocked_field_stores or set()
        self.rounds = rounds
        #: optional repro.perf.ProgramIndex: memoizes CFGs, loop structure
        #: and traversal order across rounds and re-evaluated methods
        self.index = index

        # interpretation state (reset per run)
        self.call_stack: list[StmtRef] = []
        self.current_root: str = ""
        self._field_store: dict[tuple[str, str], list[tuple[StmtRef | None, AVal]]] = {}
        self._db: dict[str, list[AVal]] = {}
        self._prefs: dict[str, AVal] = {}
        self._conns: list[ConnRecord] = []
        self._txn_ids: dict[tuple, int] = {}
        self._arrivals: dict[tuple, TxnRecord] = {}
        self._accs: dict[int, ResponseAccumulator] = {}
        self._memo: dict[tuple, AVal] = {}
        self._active: set[tuple] = set()
        self._evaluated: set[str] = set()

    # ------------------------------------------------------------------ driver
    def run(self, roots: list[tuple[str, str]], *, span=NULL_SPAN) -> InterpResult:
        """Interpret each entry point.  ``roots`` — (method_id, trigger kind).

        Two rounds by default: the first populates heap/DB/preference
        stores; the second re-derives signatures with cross-event values
        visible ("multiple iterations until it does not discover new
        dependencies", §3.4).
        """
        for round_no in range(max(1, self.rounds)):
            evaluated_before = len(self._evaluated)
            round_span = span.child(f"round-{round_no + 1}")
            with round_span:
                self._arrivals.clear()
                self._accs.clear()
                self._memo.clear()
                self._conns.clear()
                for method_id, kind in roots:
                    try:
                        method = self.program.method_by_id(method_id)
                    except KeyError:
                        continue
                    self.current_root = method_id
                    origin = _ENTRY_ORIGINS.get(kind, None)
                    args: list[AVal] = [
                        Unknown(_kind_of_type(p.name), origin=origin)
                        for p in method.sig.param_types
                    ]
                    this = AppObjAV.of(method.class_name) if not method.is_static else None
                    self.call_stack = []
                    self._eval_method(method, this, args, depth=0, memoize=False)
                # flush never-read connections (fire-and-forget sends)
                for conn in self._conns:
                    if conn._resp is None and conn.body_parts:
                        conn.finalize(self, StmtRef("<conn>", conn.conn_id))
            round_span.count(
                "methods_evaluated", len(self._evaluated) - evaluated_before
            )
            round_span.count("transactions", len(self._arrivals))
        if span:
            span.count("roots", len(roots))
            span.count("methods_evaluated", len(self._evaluated))
        result = InterpResult(
            transactions=sorted(self._arrivals.values(), key=lambda t: t.txn_id),
            evaluated_methods=set(self._evaluated),
        )
        for key, entries in self._field_store.items():
            terms = [to_term(v) for _, v in entries]
            if terms:
                result.field_terms[key] = alt(*terms)
        return result

    # --------------------------------------------------------- InterpServices
    def record_transaction(
        self,
        site: StmtRef,
        request: RequestAV,
        *,
        response_kind: str = "unknown",
        consumer: str | None = None,
    ) -> RespRef | None:
        key = (self.current_root, tuple(self.call_stack), site)
        txn_id = self._txn_ids.setdefault(key, len(self._txn_ids))
        acc = self._accs.get(txn_id)
        if acc is None:
            acc = ResponseAccumulator(txn_id=txn_id, kind=response_kind)
            self._accs[txn_id] = acc
        if consumer:
            acc.record_consumer(consumer)
        self._arrivals[key] = TxnRecord(
            txn_id=txn_id,
            site=site,
            root=self.current_root,
            request=request,
            acc=acc,
            consumer=consumer,
            dp_class=site.method_id,
        )
        return RespRef(frozenset({txn_id}))

    def acc_of(self, acc_id: int) -> ResponseAccumulator:
        return self._accs[acc_id]

    def mark_response_kind(self, ref: RespRef, kind: str) -> None:
        for acc_id in ref.accs:
            acc = self._accs.get(acc_id)
            if acc is not None and acc.kind in ("unknown", "text"):
                acc.kind = kind

    def record_access(self, ref: RespRef, leaf_kind: str | None = None) -> None:
        for acc_id in ref.accs:
            acc = self._accs.get(acc_id)
            if acc is not None:
                acc.record_access(ref.path, leaf_kind or "any")

    def record_consumer(self, ref_or_term, consumer: str) -> None:
        refs: list[int] = []
        if isinstance(ref_or_term, RespRef):
            refs = list(ref_or_term.accs)
        elif isinstance(ref_or_term, Term):
            from .lang import origins_of

            for origin in origins_of(ref_or_term):
                if origin.startswith("response:"):
                    ids = origin.split(":", 2)[1]
                    refs.extend(int(x) for x in ids.split(","))
        for acc_id in refs:
            acc = self._accs.get(acc_id)
            if acc is not None:
                acc.record_consumer(consumer)

    def call_app_method(
        self,
        class_name: str,
        method_name: str,
        args: list[AVal],
        this: AVal | None = None,
    ) -> AVal | None:
        cls = self.program.class_of(class_name)
        if cls is None:
            return None
        candidates = [m for m in cls.find_methods(method_name) if m.body is not None]
        if not candidates:
            for sup in self.program.superclasses(class_name):
                sup_cls = self.program.class_of(sup)
                if sup_cls is None:
                    break
                candidates = [
                    m for m in sup_cls.find_methods(method_name) if m.body is not None
                ]
                if candidates:
                    break
        if not candidates:
            return None
        method = candidates[0]
        if this is None and not method.is_static:
            this = AppObjAV.of(class_name)
        padded = list(args)[: len(method.sig.param_types)]
        while len(padded) < len(method.sig.param_types):
            padded.append(UNKNOWN_ANY)
        return self._eval_method(method, this, padded, depth=len(self.call_stack))

    def resource_string(self, rid: int) -> str | None:
        if self.resources.has_id(rid):
            return self.resources.get_string(rid)
        return None

    def db_store(self, table: str, column: str, value: AVal) -> None:
        bucket = self._db.setdefault((table, column), [])
        c = canon(value)
        if not any(canon(v) == c for v in bucket):
            bucket.append(value)

    def db_load(self, table: str, column: str | None = None) -> AVal:
        buckets = [
            vs
            for (t, col), vs in self._db.items()
            if t == table and (column is None or col == column)
        ]
        values = [v for vs in buckets for v in vs]
        if not values:
            return Unknown("any", origin="database")
        merged = values[0]
        for v in values[1:]:
            merged = merge_avals(merged, v)
        return merged

    def pref_store(self, key: str, value: AVal) -> None:
        self._prefs[key] = value

    def pref_load(self, key: str) -> AVal | None:
        return self._prefs.get(key)

    def conn_new(self, url_term: Term) -> int:
        conn = ConnRecord(len(self._conns), url_term)
        self._conns.append(conn)
        return conn.conn_id

    def conn_of(self, conn_id: int) -> ConnRecord:
        return self._conns[conn_id]

    def class_hierarchy_of(self, class_name: str) -> set[str]:
        return self.program.library_ancestors(class_name)

    # ------------------------------------------------------------ method eval
    def _eval_method(
        self,
        method: Method,
        this: AVal | None,
        args: list[AVal],
        depth: int,
        memoize: bool = True,
    ) -> AVal:
        if method.body is None:
            return UNKNOWN_ANY
        if depth > _MAX_DEPTH:
            return UNKNOWN_ANY
        if (
            self.relevant_methods is not None
            and method.method_id not in self.relevant_methods
        ):
            return UNKNOWN_ANY
        key = (
            method.method_id,
            canon(this) if this is not None else "",
            tuple(canon(a) for a in args),
        )
        if key in self._active:
            return UNKNOWN_ANY
        if memoize and key in self._memo:
            return self._memo[key]
        self._active.add(key)
        self._evaluated.add(method.method_id)
        try:
            result = self._interpret_body(method, this, args, depth)
        finally:
            self._active.discard(key)
        if memoize:
            self._memo[key] = result
        return result

    def _interpret_body(
        self, method: Method, this: AVal | None, args: list[AVal], depth: int
    ) -> AVal:
        if self.index is not None:
            cfg = self.index.cfg_of(method)
            if not cfg.blocks:
                return UNKNOWN_ANY
            loops = self.index.loop_info(method)
            rpo = self.index.rpo(method)
        else:
            cfg = cfg_of(method)
            if not cfg.blocks:
                return UNKNOWN_ANY
            loops = loop_info(cfg)
            rpo = reverse_postorder(cfg)
        frame = _Frame(method)
        out_envs: dict[int, dict[str, AVal]] = {}
        header_in_prev: dict[int, dict[str, AVal]] = {}

        passes = 3 if loops.headers else 1
        for pass_no in range(passes):
            frame.returns = []
            for bid in rpo:
                block = cfg.blocks[bid]
                preds = [p for p in cfg.pred[bid] if p in out_envs]
                env = _merge_envs([out_envs[p] for p in preds]) if preds else {}
                if loops.is_header(bid) and pass_no > 0:
                    prev_in = header_in_prev.get(bid, {})
                    env = _rep_adjust(prev_in, env)
                if loops.is_header(bid):
                    header_in_prev[bid] = dict(env)
                for stmt in block:
                    self._exec_stmt(stmt, frame, env, this, args, depth)
                out_envs[bid] = env
        if not frame.returns:
            return UNKNOWN_ANY if method.return_type.name != "void" else NULL_AV
        merged = frame.returns[0]
        for r in frame.returns[1:]:
            merged = merge_avals(merged, r)
        return merged

    # ------------------------------------------------------------- statements
    def _exec_stmt(
        self,
        stmt: Stmt,
        frame: _Frame,
        env: dict[str, AVal],
        this: AVal | None,
        args: list[AVal],
        depth: int,
    ) -> None:
        if isinstance(stmt, IdentityStmt):
            if isinstance(stmt.rhs, ThisRef):
                env[stmt.target.name] = this if this is not None else UNKNOWN_ANY
            elif isinstance(stmt.rhs, ParamRef):
                idx = stmt.rhs.index
                env[stmt.target.name] = args[idx] if idx < len(args) else UNKNOWN_ANY
            return
        if isinstance(stmt, AssignStmt):
            value = self._eval_value(stmt.rhs, frame, env, depth, stmt)
            target = stmt.target
            if isinstance(target, Local):
                env[target.name] = value
            elif isinstance(target, InstanceFieldRef):
                base = self._eval_value(target.base, frame, env, depth, stmt)
                if isinstance(base, ObjAV):
                    if isinstance(target.base, Local):
                        env[target.base.name] = base.put(target.field.name, value)
                else:
                    self._store_field(target.field, value, frame, stmt)
            elif isinstance(target, StaticFieldRef):
                self._store_field(target.field, value, frame, stmt)
            elif isinstance(target, ArrayRef):
                base = self._eval_value(target.base, frame, env, depth, stmt)
                if isinstance(base, ObjAV) and base.class_name == "array":
                    items = base.get("items", ()) or ()
                    if isinstance(target.base, Local):
                        env[target.base.name] = base.put("items", items + (value,))
            return
        if isinstance(stmt, InvokeStmt):
            self._eval_call(stmt.expr, frame, env, depth, stmt)
            return
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                frame.returns.append(
                    self._eval_value(stmt.value, frame, env, depth, stmt)
                )
            else:
                frame.returns.append(NULL_AV)
            return
        # If / Goto / Nop / Throw: control structure only.

    def _store_field(self, fsig, value: AVal, frame: _Frame, stmt: Stmt) -> None:
        ref = frame.method.stmt_ref(stmt)
        bucket = self._field_store.setdefault((fsig.class_name, fsig.name), [])
        c = canon(value)
        for existing_ref, existing in bucket:
            if existing_ref == ref and canon(existing) == c:
                return
        bucket.append((ref, value))

    def _load_field(self, fsig, frame: _Frame) -> AVal:
        entries = self._field_store.get((fsig.class_name, fsig.name), [])
        usable = [
            v
            for ref, v in entries
            if ref is None or ref not in self.blocked_field_stores
        ]
        if not usable:
            return UNKNOWN_ANY
        merged = usable[0]
        for v in usable[1:]:
            merged = merge_avals(merged, v)
        return merged

    # ------------------------------------------------------------------ values
    def _eval_value(
        self,
        value: Value,
        frame: _Frame,
        env: dict[str, AVal],
        depth: int,
        stmt: Stmt,
    ) -> AVal:
        if isinstance(value, Local):
            return env.get(value.name, UNKNOWN_ANY)
        if isinstance(value, StringConst):
            return Const(value.value)
        if isinstance(value, IntConst):
            return NumAV(value.value)
        if isinstance(value, DoubleConst):
            return NumAV(value.value)
        if isinstance(value, NullConst):
            return NULL_AV
        if isinstance(value, ClassConst):
            return ObjAV("class", (("name", value.class_name),))
        if isinstance(value, NewExpr):
            name = value.class_type.name
            if self.program.has_class(name):
                return AppObjAV.of(name)
            return ObjAV("uninit:" + name)
        if isinstance(value, NewArrayExpr):
            return ObjAV("array", (("items", ()),))
        if isinstance(value, InvokeExpr):
            return self._eval_call(value, frame, env, depth, stmt)
        if isinstance(value, InstanceFieldRef):
            base = self._eval_value(value.base, frame, env, depth, stmt)
            if isinstance(base, ObjAV):
                attr = base.get(value.field.name)
                if attr is not None:
                    return attr
            if isinstance(base, RespRef):
                child = base.child(value.field.name)
                self.record_access(child)
                return child
            return self._load_field(value.field, frame)
        if isinstance(value, StaticFieldRef):
            return self._load_field(value.field, frame)
        if isinstance(value, ArrayRef):
            base = self._eval_value(value.base, frame, env, depth, stmt)
            if isinstance(base, ObjAV) and base.class_name == "array":
                items = base.get("items", ()) or ()
                idx = self._eval_value(value.index, frame, env, depth, stmt)
                if isinstance(idx, NumAV) and 0 <= int(idx.value) < len(items):
                    return items[int(idx.value)]
                if len(items) == 1:
                    return items[0]
                if items:
                    merged = items[0]
                    for i in items[1:]:
                        merged = merge_avals(merged, i)
                    return merged
            return UNKNOWN_ANY
        if isinstance(value, BinOpExpr):
            return self._eval_binop(value, frame, env, depth, stmt)
        if isinstance(value, UnOpExpr):
            inner = self._eval_value(value.operand, frame, env, depth, stmt)
            if value.op == "-" and isinstance(inner, NumAV):
                return NumAV(-inner.value)
            return Unknown("bool" if value.op == "!" else "int")
        if isinstance(value, CastExpr):
            return self._eval_value(value.value, frame, env, depth, stmt)
        if isinstance(value, InstanceOfExpr):
            return Unknown("bool")
        if isinstance(value, LengthExpr):
            base = self._eval_value(value.array, frame, env, depth, stmt)
            if isinstance(base, ObjAV) and base.class_name == "array":
                return NumAV(len(base.get("items", ()) or ()))
            return Unknown("int")
        return UNKNOWN_ANY

    def _eval_binop(
        self, expr: BinOpExpr, frame: _Frame, env, depth: int, stmt: Stmt
    ) -> AVal:
        left = self._eval_value(expr.left, frame, env, depth, stmt)
        right = self._eval_value(expr.right, frame, env, depth, stmt)
        op = expr.op
        if op == "+":
            if isinstance(left, NumAV) and isinstance(right, NumAV):
                return NumAV(left.value + right.value)
            lt, rt = to_term(left), to_term(right)
            numericish = all(
                isinstance(v, NumAV)
                or (isinstance(t, Unknown) and t.kind in ("int", "float"))
                for v, t in ((left, lt), (right, rt))
            )
            if numericish:
                return Unknown("int")
            return concat(lt, rt)
        if op in ("-", "*", "/", "%"):
            if isinstance(left, NumAV) and isinstance(right, NumAV):
                try:
                    result = {
                        "-": lambda a, b: a - b,
                        "*": lambda a, b: a * b,
                        "/": lambda a, b: a // b if isinstance(a, int) else a / b,
                        "%": lambda a, b: a % b,
                    }[op](left.value, right.value)
                    return NumAV(result)
                except ZeroDivisionError:
                    return Unknown("int")
            return Unknown("int")
        return Unknown("bool")

    # ------------------------------------------------------------------- calls
    def _eval_call(
        self,
        expr: InvokeExpr,
        frame: _Frame,
        env: dict[str, AVal],
        depth: int,
        stmt: Stmt,
    ) -> AVal:
        site = frame.method.stmt_ref(stmt)
        base_aval = (
            self._eval_value(expr.base, frame, env, depth, stmt)
            if expr.base is not None
            else None
        )
        arg_avals = [self._eval_value(a, frame, env, depth, stmt) for a in expr.args]

        receiver = expr.sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name

        # 1) application-code dispatch
        app_result = self._try_app_dispatch(
            expr, site, receiver, base_aval, arg_avals, depth
        )
        if app_result is not UNHANDLED:
            return self._apply_effect(app_result, expr, env)

        # 2) semantic models on the receiver's (static) type
        for cls_name in (receiver, expr.sig.class_name):
            handler = self.model.lookup(cls_name, expr.sig.name)
            if handler is not None:
                outcome = handler(self, site, expr, base_aval, arg_avals)
                if outcome is not UNHANDLED:
                    return self._apply_effect(outcome, expr, env)

        # 3) framework dispatch through library ancestors (AsyncTask etc.)
        if self.program.has_class(receiver):
            ancestors = self.program.library_ancestors(receiver)
            handler = self.model.lookup_dispatch(ancestors, expr.sig.name)
            if handler is not None:
                outcome = handler(self, site, expr, base_aval, arg_avals)
                if outcome is not UNHANDLED:
                    return self._apply_effect(outcome, expr, env)

        # 4) unmodeled library call: conservative result
        if isinstance(base_aval, RespRef):
            return Unknown("any", origin=base_aval.origin_tag())
        for arg in arg_avals:
            if isinstance(arg, RespRef):
                return Unknown("any", origin=arg.origin_tag())
        return UNKNOWN_ANY

    def _try_app_dispatch(
        self, expr, site, receiver, base_aval, arg_avals, depth
    ):
        sig = expr.sig
        if expr.kind == "static":
            target = self.program.resolve_static(sig)
            if target is None:
                return UNHANDLED
            return self._call_app(site, target, None, arg_avals, depth)
        if sig.name == "<init>":
            if isinstance(base_aval, AppObjAV):
                cls = sorted(base_aval.classes)[0]
                target = self.program.resolve_dispatch(cls, sig)
                if target is not None:
                    self._call_app(site, target, base_aval, arg_avals, depth)
                return Effect(result=None)
            return UNHANDLED
        dynamic_classes: list[str] = []
        if isinstance(base_aval, AppObjAV):
            dynamic_classes = sorted(base_aval.classes)
        elif self.program.has_class(receiver):
            dynamic_classes = [receiver]
        results = []
        for cls in dynamic_classes:
            target = self.program.resolve_dispatch(cls, sig)
            if target is not None:
                results.append(
                    self._call_app(site, target, base_aval, arg_avals, depth)
                )
        if not results:
            return UNHANDLED
        merged = results[0]
        for r in results[1:]:
            merged = merge_avals(merged, r)
        return merged

    def _call_app(self, site, target, this, args, depth) -> AVal:
        padded = list(args)[: len(target.sig.param_types)]
        while len(padded) < len(target.sig.param_types):
            padded.append(UNKNOWN_ANY)
        self.call_stack.append(site)
        try:
            return self._eval_method(target, this, padded, depth + 1)
        finally:
            self.call_stack.pop()

    @staticmethod
    def _apply_effect(outcome, expr: InvokeExpr, env: dict[str, AVal]) -> AVal:
        if isinstance(outcome, Effect):
            if outcome.new_base is not None and isinstance(expr.base, Local):
                env[expr.base.name] = outcome.new_base
            return outcome.result if outcome.result is not None else NULL_AV
        return outcome if outcome is not None else NULL_AV


# ----------------------------------------------------------------- env merging
def _merge_envs(envs: list[dict[str, AVal]]) -> dict[str, AVal]:
    if len(envs) == 1:
        return dict(envs[0])
    out: dict[str, AVal] = {}
    keys: set[str] = set()
    for e in envs:
        keys |= set(e)
    for key in keys:
        present = [e[key] for e in envs if key in e]
        merged = present[0]
        for v in present[1:]:
            merged = merge_avals(merged, v)
        out[key] = merged
    return out


def _rep_adjust(prev: dict[str, AVal], new: dict[str, AVal]) -> dict[str, AVal]:
    """Loop-header merge: loop-variant growth becomes ``rep`` (paper §3.2)."""
    out = dict(new)
    for key, old_val in prev.items():
        new_val = new.get(key)
        if new_val is None or canon(new_val) == canon(old_val):
            out[key] = old_val if new_val is None else new_val
            continue
        # Widen loop-carried numerics: a counter that changes across the
        # back edge becomes <?int>, never a disjunction of concrete values.
        if isinstance(old_val, NumAV) or (
            isinstance(old_val, Unknown) and old_val.kind in ("int", "float")
        ):
            kind = old_val.kind if isinstance(old_val, Unknown) else "int"
            out[key] = Unknown(kind)
            continue
        out[key] = detect_rep(old_val, new_val)
    return out


def detect_rep(old: AVal, new: AVal) -> AVal:
    """If ``new`` extends ``old`` (string suffix growth or array growth),
    mark the growing part repeatable; otherwise fall back to merging."""
    old_t = old if isinstance(old, Term) else None
    new_t = new if isinstance(new, Term) else None
    if old_t is not None and new_t is not None:
        # Confluence at a loop header merges {initial, grown} into an Alt;
        # recognise the growth across the options.
        from .lang import Alt as _Alt

        if isinstance(new_t, _Alt):
            suffixes = []
            for option in new_t.options:
                if option == old_t:
                    continue
                suffix = _strip_prefix(old_t, option)
                if suffix is None:
                    break
                suffixes.append(suffix)
            else:
                if suffixes:
                    return _fold_rep(old_t, alt(*suffixes))
        suffix = _strip_prefix(old_t, new_t)
        if suffix is not None:
            return _fold_rep(old_t, suffix)
        if isinstance(old_t, JsonArray) and isinstance(new_t, JsonArray):
            if new_t.fixed[: len(old_t.fixed)] == old_t.fixed and len(
                new_t.fixed
            ) > len(old_t.fixed):
                extra = new_t.fixed[len(old_t.fixed):]
                elem = extra[0]
                for e in extra[1:]:
                    elem = alt(elem, e)
                if old_t.elem is not None:
                    elem = alt(old_t.elem, elem)
                return JsonArray(fixed=old_t.fixed, elem=elem)
    return merge_avals(old, new)


def _fold_rep(prefix: Term, suffix: Term) -> Term:
    """``prefix + Rep(suffix)``, folding into an existing trailing rep so a
    later widening pass refines the rep body instead of stacking reps."""
    parts = prefix.parts if isinstance(prefix, Concat) else (prefix,)
    if parts and isinstance(parts[-1], Rep):
        last = parts[-1]
        return concat(*parts[:-1], rep(alt(last.body, suffix)))
    return concat(prefix, rep(suffix))


def _strip_prefix(old: Term, new: Term) -> Term | None:
    """Return the suffix of ``new`` after prefix ``old``, or None."""
    o = old.parts if isinstance(old, Concat) else (old,)
    n = new.parts if isinstance(new, Concat) else (new,)
    if len(n) < len(o):
        return None
    if tuple(n[: len(o)]) == tuple(o):
        if len(n) == len(o):
            return None  # identical
        return concat(*n[len(o):])
    # allow the boundary const to have grown: ("a",) vs ("ab", X) or ("ab",)
    if (
        o
        and isinstance(o[-1], Const)
        and isinstance(n[len(o) - 1], Const)
        and n[len(o) - 1].text.startswith(o[-1].text)
        and tuple(n[: len(o) - 1]) == tuple(o[:-1])
    ):
        grown = n[len(o) - 1].text[len(o[-1].text):]
        if not grown and len(n) == len(o):
            return None
        return concat(Const(grown), *n[len(o):])
    return None


def _kind_of_type(type_name: str) -> str:
    if type_name in ("int", "long", "short", "byte"):
        return "int"
    if type_name in ("float", "double"):
        return "float"
    if type_name == "boolean":
        return "bool"
    if type_name == "java.lang.String":
        return "str"
    return "any"


__all__ = [
    "ConnRecord",
    "InterpResult",
    "SignatureInterpreter",
    "TxnRecord",
    "detect_rep",
]
