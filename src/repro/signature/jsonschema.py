"""Render signature trees as JSON Schema (paper §1: "Extractocol internally
maintains a tree representation of a signature, allowing us to represent
signature in other forms, such as ... JSON schema for JSON")."""

from __future__ import annotations

from .lang import (
    Alt,
    Concat,
    Const,
    JsonArray,
    JsonObject,
    Rep,
    Term,
    Unknown,
)

_KIND_TYPES = {
    "str": "string",
    "url": "string",
    "int": "integer",
    "float": "number",
    "bool": "boolean",
    "any": {},
}


def to_json_schema(term: Term) -> dict:
    """Compile a signature term to a JSON Schema fragment (draft-07 subset)."""
    schema = _compile(term)
    if isinstance(schema, dict):
        return schema
    return {}


def _compile(term: Term):
    if isinstance(term, JsonObject):
        properties = {}
        required = []
        for key, value in term.entries:
            if not isinstance(key, Const):
                continue
            properties[key.text] = _compile(value)
            required.append(key.text)
        out: dict = {"type": "object", "properties": properties}
        if required:
            out["required"] = sorted(required)
        out["additionalProperties"] = bool(term.open_)
        return out
    if isinstance(term, JsonArray):
        if term.elem is not None:
            return {"type": "array", "items": _compile(term.elem)}
        if term.fixed:
            return {
                "type": "array",
                "prefixItems": [_compile(f) for f in term.fixed],
                "minItems": len(term.fixed),
            }
        return {"type": "array"}
    if isinstance(term, Const):
        text = term.text
        if text in ("true", "false"):
            return {"type": "boolean", "const": text == "true"}
        try:
            return {"type": "integer", "const": int(text)}
        except ValueError:
            pass
        try:
            return {"type": "number", "const": float(text)}
        except ValueError:
            pass
        return {"type": "string", "const": text}
    if isinstance(term, Unknown):
        mapped = _KIND_TYPES.get(term.kind, {})
        if isinstance(mapped, str):
            return {"type": mapped}
        return dict(mapped)
    if isinstance(term, Alt):
        return {"anyOf": [_compile(o) for o in term.options]}
    if isinstance(term, (Concat, Rep)):
        from .regex import to_regex

        return {"type": "string", "pattern": to_regex(term)}
    return {}


__all__ = ["to_json_schema"]
