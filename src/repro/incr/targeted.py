"""Demand-driven targeted slicing (BackDroid-style bytecode search).

Instead of warming whole-program def-use before slicing, targeted mode:

1. finds candidate network-call sites with a *seed index* — a cheap
   textual scan for registered ``(class, method)`` demarcation signatures
   over the instruction stream, no type resolution, no def-use;
2. restricts the demarcation scan to those sites;
3. walks the ICFG backwards on demand from the hits to bound the region
   whose def-use the shared :class:`~repro.perf.index.ProgramIndex` warms
   — methods outside the region still materialize lazily if the engine
   reaches them, so the region is a performance hint, never a soundness
   boundary.

The seed index deliberately matches the *static signature class* only.
The full scanner additionally matches the declared type of the receiver
local (``expr.base.type.name``); call sites reachable only through that
rule are the index's blind spot, reported by lint rule SEM006 so targeted
mode stays honest on every corpus.
"""

from __future__ import annotations

from ..ir.program import Program
from ..ir.statements import StmtRef
from ..slicing.demarcation import DemarcationRegistry


def seed_sites(
    program: Program, registry: DemarcationRegistry | None = None
) -> set[StmtRef]:
    """Candidate demarcation call sites by signature text alone — the
    bytecode-search pass.  O(statements), independent of the call graph."""
    registry = registry or DemarcationRegistry()
    out: set[StmtRef] = set()
    for method in program.methods():
        if method.body is None:
            continue
        mid = method.method_id
        for idx, stmt in enumerate(method.body):
            expr = stmt.invoke
            if expr is None:
                continue
            if registry.lookup(expr.sig.class_name, expr.sig.name):
                out.add(StmtRef(mid, idx))
    return out


class TargetedSearch:
    """Demand-driven exploration state for one targeted analysis."""

    def __init__(
        self,
        program: Program,
        callgraph,
        registry: DemarcationRegistry | None = None,
    ) -> None:
        self.program = program
        self.callgraph = callgraph
        self.registry = registry or DemarcationRegistry()
        self._sites: set[StmtRef] | None = None

    @property
    def sites(self) -> set[StmtRef]:
        if self._sites is None:
            self._sites = seed_sites(self.program, self.registry)
        return self._sites

    def scan(self) -> list:
        """Demarcation instances at seed-index sites only (same matching
        and ordering as the full scanner, restricted input)."""
        from ..slicing.demarcation import scan_demarcation_points

        return scan_demarcation_points(
            self.program,
            self.callgraph,
            self.registry,
            only_sites=self.sites,
        )

    def region(self, dps) -> set[str]:
        """Methods plausibly touched while slicing ``dps``: the backward
        caller closure of the demarcation methods (argument taint walks to
        callers) plus their forward call closure (response taint walks into
        callees).  A warm-up hint for the ProgramIndex."""
        roots: set[str] = set()
        for dp in dps:
            roots.add(dp.site.method_id)
            for ref, _value in (*dp.request_seeds, *dp.response_seeds):
                roots.add(ref.method_id)
        region = set(self.callgraph.reachable_from(sorted(roots)))
        stack = sorted(roots)
        while stack:
            mid = stack.pop()
            for caller in self.callgraph.caller_methods_of(mid):
                if caller not in region:
                    region.add(caller)
                    stack.append(caller)
        return region


__all__ = ["TargetedSearch", "seed_sites"]
