"""Per-app method-hash manifests: the durable side of incremental analysis.

A manifest records, for one (apk digest, semantic config) pair:

* the content-hashed fingerprint of every method and class
  (:mod:`repro.ir.fingerprint`), and
* a slim, JSON-safe replica of every demarcation-point slice — exactly the
  statement/flow sets later phases consume, *not* the provenance tables.

It is stored beside the report envelope in the
:class:`~repro.service.store.ResultStore` (its envelope carries no
``"report"`` key, so report listings never see it) and is all a warm run
needs: the :class:`~repro.incr.reuse.ReuseIndex` diffs fingerprints and
replays the slim slices of untouched demarcation points.
"""

from __future__ import annotations

import hashlib

from ..ir.statements import StmtRef
from ..ir.types import parse_type
from ..ir.values import (
    Constant,
    FieldSig,
    InstanceFieldRef,
    Local,
    StaticFieldRef,
    Value,
)
from ..taint.slices import SliceResult

#: bump when the manifest layout or the fingerprint recipe changes; a
#: mismatch makes stored manifests invisible (full re-analysis, never
#: stale reuse)
MANIFEST_SCHEMA = 1


# -- seeds -----------------------------------------------------------------
def seed_token(ref: StmtRef, value: Value) -> str:
    """A comparable, JSON-safe token for one (statement, value) seed."""
    if isinstance(value, Local):
        v = f"l:{value.name}:{value.type}"
    elif isinstance(value, Constant):
        v = f"c:{value}"
    else:
        v = f"v:{value}"
    return f"{ref.method_id}#{ref.index}|{v}"


def dp_identity(dp) -> dict:
    """The parts of a scanned :class:`DPInstance` a cached slice must match
    before replay is even considered: same spec at the same site with the
    same seeds (a changed seed means changed slicing input)."""
    return {
        "key": dp.key,
        "site": [dp.site.method_id, dp.site.index],
        "spec": [dp.spec.class_name, dp.spec.method_name],
        "listener_class": dp.listener_class,
        "request_seeds": sorted(
            seed_token(r, v) for r, v in dp.request_seeds
        ),
        "response_seeds": sorted(
            seed_token(r, v) for r, v in dp.response_seeds
        ),
    }


# -- slices ----------------------------------------------------------------
def _ref_pair(ref: StmtRef) -> list:
    return [ref.method_id, ref.index]


def slice_to_dict(sl: SliceResult) -> dict:
    """JSON-safe slim form of one slice — everything phases 2/3 read
    (statements, flows, heap cells, locals) plus the visited set the reuse
    check needs.  Provenance tables are deliberately dropped: with
    ``record_provenance`` on, the engine skips reuse entirely."""
    return {
        "direction": sl.direction,
        "stmts": sorted(_ref_pair(r) for r in sl.stmts),
        "call_edges": sorted(
            [r.method_id, r.index, tgt] for r, tgt in sl.call_edges
        ),
        "fields": sorted(
            [f.class_name, f.name, str(f.type)] for f in sl.fields
        ),
        "tainted_locals": sorted(
            [mid, loc.name, str(loc.type)] for mid, loc in sl.tainted_locals
        ),
        "origin_params": sorted(
            [mid, idx] for mid, idx in sl.origin_params
        ),
        "missed": sorted(_ref_pair(r) for r in sl.missed_async_flows),
        "visited": sorted(sl.visited),
        "stats": {k: sl.stats[k] for k in sorted(sl.stats)},
    }


def slice_from_dict(data: dict) -> SliceResult:
    return SliceResult(
        direction=data["direction"],
        stmts={StmtRef(m, i) for m, i in data["stmts"]},
        call_edges={
            (StmtRef(m, i), tgt) for m, i, tgt in data["call_edges"]
        },
        fields={
            FieldSig(c, n, parse_type(t)) for c, n, t in data["fields"]
        },
        tainted_locals={
            (mid, Local(n, parse_type(t)))
            for mid, n, t in data["tainted_locals"]
        },
        origin_params={(mid, idx) for mid, idx in data["origin_params"]},
        missed_async_flows={StmtRef(m, i) for m, i in data["missed"]},
        visited=set(data["visited"]),
        stats=dict(data["stats"]),
    )


def dp_to_dict(slices) -> dict:
    """Slim form of one :class:`DPSlices` (identity + both slices)."""
    out = dp_identity(slices.dp)
    out["request"] = slice_to_dict(slices.request)
    out["response"] = slice_to_dict(slices.response)
    return out


def field_key(class_name: str, name: str, type_name: str) -> str:
    return f"{class_name}|{name}|{type_name}"


def parse_field_key(key: str) -> tuple[str, str, str]:
    cls, name, type_name = key.split("|", 2)
    return cls, name, type_name


def method_field_hashes(method) -> dict[str, str]:
    """Per heap cell the method stores or loads, a content hash of every
    statement touching it.  The reuse check compares these across versions:
    an edit that leaves a field's accessing statements byte-identical
    cannot change how field-based taint flows through that cell, so slices
    coupled only through the cell stay replayable (guard 4 precision)."""
    touched: dict[str, list[str]] = {}
    if method.body is None:
        return {}
    for stmt in method.body:
        keys = {
            field_key(v.field.class_name, v.field.name, str(v.field.type))
            for v in (*stmt.defs(), *stmt.uses())
            if isinstance(v, (InstanceFieldRef, StaticFieldRef))
        }
        for key in keys:
            touched.setdefault(key, []).append(str(stmt))
    return {
        key: hashlib.sha256("\n".join(stmts).encode("utf-8")).hexdigest()[:16]
        for key, stmts in touched.items()
    }


def program_field_hashes(program) -> dict[str, dict[str, str]]:
    """``method_field_hashes`` for every method with heap accesses."""
    out: dict[str, dict[str, str]] = {}
    for method in program.methods():
        hashes = method_field_hashes(method)
        if hashes:
            out[method.method_id] = hashes
    return out


def dp_visited(entry: dict) -> set[str]:
    """Every method whose change invalidates this cached DP slice."""
    out = set(entry["request"]["visited"])
    out |= set(entry["response"]["visited"])
    out.add(entry["site"][0])
    for token in (*entry["request_seeds"], *entry["response_seeds"]):
        out.add(token.split("#", 1)[0])
    return out


# -- the manifest ----------------------------------------------------------
def build_manifest(
    *,
    app: str,
    apk_digest: str,
    config_key: str,
    program,
    callgraph,
    event_roots=None,
    linked_returns=None,
    entrypoint_ids=(),
    slicing=None,
) -> dict:
    """Roll fingerprints + slim DP slices into one storable manifest.

    Call after the slicing phase: the call graph then carries the async
    model's and the demarcation scan's implicit edges, which are
    fingerprint inputs."""
    from ..ir.fingerprint import fingerprint_program

    methods, classes = fingerprint_program(
        program,
        callgraph,
        event_roots=event_roots,
        linked_returns=linked_returns,
        entrypoint_ids=frozenset(entrypoint_ids),
    )
    return {
        "schema": MANIFEST_SCHEMA,
        "app": app,
        "apk_digest": apk_digest,
        "config_key": config_key,
        "methods": methods,
        "classes": classes,
        "method_fields": program_field_hashes(program),
        "dps": [
            dp_to_dict(s) for s in (slicing.slices if slicing else ())
        ],
    }


__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "dp_identity",
    "dp_to_dict",
    "dp_visited",
    "field_key",
    "method_field_hashes",
    "parse_field_key",
    "program_field_hashes",
    "seed_token",
    "slice_from_dict",
    "slice_to_dict",
]
