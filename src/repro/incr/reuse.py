"""Cross-version slice reuse: manifest diffing and cached-DP replay.

The dirtiness rule (documented in DESIGN.md):

A cached demarcation-point slice may be replayed iff

1. the fresh scan finds a DP with the *same identity* (spec, site, seeds —
   compared after mapping the cached entry through the
   :class:`~repro.apk.rewrite.RenameMap` for obfuscated re-releases),
2. no method the old slice *visited* changed fingerprint (changed, removed
   — the engine records every body it resolves, so this covers the whole
   backward/forward reachable set of the slice),
3. no added/changed method calls into the slice's visited set (a new
   caller feeds new argument taint into parameter back-propagation), and
4. no dirty method changed how it touches a heap cell in the slice's
   ``fields`` set (field-based taint jumps across arbitrary methods, so
   heap coupling is not bounded by the call graph).  This guard is
   per-field precise: manifests record a content hash of each method's
   accessing statements per field, so an edit elsewhere in a method that
   also happens to touch a tracked field does not invalidate slices
   coupled only through that — unchanged — cell.

Everything else re-slices.  Fingerprint comparison happens in the *old*
namespace: for renamed re-releases the new program is mapped back with
``rename_program(new, renames.inverted())`` first, because fingerprints
hash printed identifiers and are namespace-sensitive by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.rewrite import (
    RenameMap,
    _Rewriter,
    rename_method_id,
    rename_program,
)
from ..ir.types import parse_type
from ..ir.values import FieldSig
from ..slicing.slicer import DPSlices
from .manifest import (
    dp_identity,
    dp_visited,
    field_key,
    method_field_hashes,
    parse_field_key,
    slice_from_dict,
)


def _has_renames(renames: RenameMap | None) -> bool:
    return renames is not None and bool(
        renames.class_map or renames.method_map or renames.field_map
    )


def fingerprints_in_base_namespace(
    apk, config, *, registry=None, renames: RenameMap | None = None
) -> dict[str, str]:
    """Fingerprint ``apk``'s program as the base (pre-rename) namespace
    sees it: map the program back through the inverted rename map, rerun
    the cheap setup passes (call graph, async model, demarcation scan —
    all O(program), no slicing) and hash.

    With no renames the program is fingerprinted as-is; callers that
    already hold post-scan setup artifacts should fingerprint those
    directly instead."""
    from ..cfg.callgraph import build_callgraph
    from ..ir.fingerprint import fingerprint_program
    from ..semantics.async_model import (
        compute_event_roots,
        discover_callbacks,
    )
    from ..slicing.demarcation import scan_demarcation_points

    program = apk.program
    entry_ids = [ep.method_id for ep in apk.entrypoints]
    if _has_renames(renames):
        inv = renames.inverted()
        program = rename_program(program, inv)
        entry_ids = [rename_method_id(m, inv, program) for m in entry_ids]
    callgraph = build_callgraph(program)
    cbinfo = discover_callbacks(program, callgraph)
    if config.model_intents:
        from ..semantics.extensions import discover_intent_edges

        discover_intent_edges(program, callgraph)
    event_roots = compute_event_roots(
        program, callgraph, entry_ids, cbinfo.boundary_methods
    )
    scan_demarcation_points(program, callgraph, registry)
    methods, _classes = fingerprint_program(
        program,
        callgraph,
        event_roots=event_roots,
        linked_returns=cbinfo.linked_returns,
        entrypoint_ids=frozenset(entry_ids),
    )
    return methods


class _EntryMapper:
    """Maps a slim manifest entry from the old namespace into the new one
    (identity mapping when there are no renames)."""

    def __init__(self, renames: RenameMap | None) -> None:
        self._active = _has_renames(renames)
        self._rw = _Rewriter(renames) if self._active else None
        self._renames = renames
        self._mids: dict[str, str] = {}

    def mid(self, method_id: str) -> str:
        if not self._active:
            return method_id
        mapped = self._mids.get(method_id)
        if mapped is None:
            mapped = rename_method_id(method_id, self._renames, None)
            self._mids[method_id] = mapped
        return mapped

    def type_str(self, name: str) -> str:
        if not self._active:
            return name
        return str(self._rw.type(parse_type(name)))

    def field(self, cls: str, name: str, type_name: str) -> list:
        if not self._active:
            return [cls, name, type_name]
        f = self._rw.field_sig(FieldSig(cls, name, parse_type(type_name)))
        return [f.class_name, f.name, str(f.type)]

    def seed_token(self, token: str) -> str:
        loc, _, value = token.partition("|")
        mid, _, idx = loc.rpartition("#")
        mapped = f"{self.mid(mid)}#{idx}"
        if value.startswith("l:"):
            _, name, type_name = value.split(":", 2)
            value = f"l:{name}:{self.type_str(type_name)}"
        return f"{mapped}|{value}"

    def slice_dict(self, data: dict) -> dict:
        return {
            "direction": data["direction"],
            "stmts": [[self.mid(m), i] for m, i in data["stmts"]],
            "call_edges": [
                [self.mid(m), i, self.mid(t)]
                for m, i, t in data["call_edges"]
            ],
            "fields": [self.field(c, n, t) for c, n, t in data["fields"]],
            "tainted_locals": [
                [self.mid(m), n, self.type_str(t)]
                for m, n, t in data["tainted_locals"]
            ],
            "origin_params": [
                [self.mid(m), i] for m, i in data["origin_params"]
            ],
            "missed": [[self.mid(m), i] for m, i in data["missed"]],
            "visited": [self.mid(m) for m in data["visited"]],
            "stats": data["stats"],
        }

    def entry(self, entry: dict) -> dict:
        cls = entry["spec"][0]
        mapped_cls = (
            self._renames.cls(cls) if self._active else cls
        )
        site = [self.mid(entry["site"][0]), entry["site"][1]]
        listener = entry["listener_class"]
        if listener is not None and self._active:
            listener = self._renames.cls(listener)
        return {
            "key": (
                f"{mapped_cls}.{entry['spec'][1]}"
                f"@{site[0]}#{site[1]}"
            ),
            "site": site,
            "spec": [mapped_cls, entry["spec"][1]],
            "listener_class": listener,
            "request_seeds": sorted(
                self.seed_token(t) for t in entry["request_seeds"]
            ),
            "response_seeds": sorted(
                self.seed_token(t) for t in entry["response_seeds"]
            ),
            "request": self.slice_dict(entry["request"]),
            "response": self.slice_dict(entry["response"]),
        }


@dataclass
class ReusePlan:
    """The outcome of one manifest comparison: which scanned demarcation
    points replay from cache and which must be re-sliced."""

    #: new-namespace DP key -> replayed DPSlices (seconds = 0.0)
    reused: dict[str, DPSlices] = field(default_factory=dict)
    #: scanned DPInstances needing a live re-slice, in scan order
    dirty_dps: list = field(default_factory=list)
    #: old-namespace method ids whose fingerprint changed/appeared/vanished
    dirty_methods: set[str] = field(default_factory=set)

    @property
    def counters(self) -> dict[str, int]:
        return {
            "reused": len(self.reused),
            "reanalyzed": len(self.dirty_dps),
            "dirty_methods": len(self.dirty_methods),
        }


class ReuseIndex:
    """Compares a stored manifest against a new program's fingerprints and
    plans which cached DP slices survive."""

    def __init__(self, manifest: dict) -> None:
        self.manifest = manifest

    def plan(
        self,
        scanned_dps,
        new_fingerprints: dict[str, str],
        program,
        callgraph,
        *,
        renames: RenameMap | None = None,
    ) -> ReusePlan:
        """``new_fingerprints`` must be in the manifest's (old) namespace —
        see :func:`fingerprints_in_base_namespace`; ``program`` and
        ``callgraph`` are the new version's live (post-scan) artifacts."""
        old_fp = self.manifest["methods"]
        dirty_old = {
            mid
            for mid in old_fp.keys() | new_fingerprints.keys()
            if old_fp.get(mid) != new_fingerprints.get(mid)
        }
        plan = ReusePlan(dirty_methods=dirty_old)
        mapper = _EntryMapper(renames)
        inv_rw = (
            _Rewriter(renames.inverted()) if _has_renames(renames) else None
        )

        def back_field_key(key: str) -> str:
            # new-namespace field key -> the manifest's (old) namespace
            if inv_rw is None:
                return key
            cls, name, type_name = parse_field_key(key)
            f = inv_rw.field_sig(FieldSig(cls, name, parse_type(type_name)))
            return field_key(f.class_name, f.name, str(f.type))

        # Guard 3: added/changed methods that exist in the new program may
        # feed new argument taint into any method they call.  Guard 4:
        # compare each dirty method's per-field access hashes against the
        # manifest — only fields whose accessing statements actually
        # changed (or appeared, or vanished with the method) become dirty.
        old_mf = self.manifest.get("method_fields", {})
        dirty_targets: set[str] = set()
        dirty_fields: set[str] = set()  # old-namespace field keys
        for mid in dirty_old:
            old_fields = old_mf.get(mid, {})
            new_fields: dict[str, str] = {}
            if mid in new_fingerprints:
                mid_new = mapper.mid(mid)
                try:
                    method = program.method_by_id(mid_new)
                except KeyError:
                    method = None
                if method is not None:
                    for site in callgraph.sites_in(mid_new):
                        dirty_targets |= callgraph.callees_of(site.ref)
                    new_fields = {
                        back_field_key(key): digest
                        for key, digest in method_field_hashes(
                            method
                        ).items()
                    }
            for key in old_fields.keys() | new_fields.keys():
                if old_fields.get(key) != new_fields.get(key):
                    dirty_fields.add(key)

        replayable: dict[str, dict] = {}
        for entry in self.manifest.get("dps", ()):
            visited_old = dp_visited(entry)
            if visited_old & dirty_old:
                continue
            cached_fields = {
                field_key(c, n, t)
                for part in ("request", "response")
                for c, n, t in entry[part]["fields"]
            }
            if cached_fields & dirty_fields:
                continue
            mapped = mapper.entry(entry)
            visited_new = {mapper.mid(m) for m in visited_old}
            if dirty_targets & visited_new:
                continue
            replayable[mapped["key"]] = mapped

        for dp in scanned_dps:
            mapped = replayable.get(dp.key)
            if mapped is not None and dp_identity(dp) == {
                k: mapped[k]
                for k in (
                    "key",
                    "site",
                    "spec",
                    "listener_class",
                    "request_seeds",
                    "response_seeds",
                )
            }:
                plan.reused[dp.key] = DPSlices(
                    dp=dp,
                    request=slice_from_dict(mapped["request"]),
                    response=slice_from_dict(mapped["response"]),
                    seconds=0.0,
                )
            else:
                plan.dirty_dps.append(dp)
        return plan


__all__ = [
    "ReuseIndex",
    "ReusePlan",
    "fingerprints_in_base_namespace",
]
