"""Incremental & demand-driven targeted analysis (``repro.incr``).

Two ways to avoid whole-program work:

* :mod:`repro.incr.manifest` / :mod:`repro.incr.reuse` — content-hashed
  IR fingerprints rolled into a per-app manifest stored beside the report
  envelope; a :class:`~repro.incr.reuse.ReuseIndex` compares manifests
  across versions (through the
  :class:`~repro.apk.rewrite.RenameMap` for obfuscated re-releases) and
  replays cached demarcation-point slices whose backward-reachable method
  set is unchanged, so warm re-analysis costs ~O(changed methods).
* :mod:`repro.incr.targeted` — a BackDroid-style demand-driven pass that
  finds demarcation points with a cheap bytecode-search seed index and
  materializes def-use only for the backward-reachable region, instead of
  indexing the whole program up front.

Both are selected via ``AnalysisConfig(mode=...)`` / ``repro analyze
--mode`` and produce byte-identical reports to the full pipeline.
"""

from .manifest import MANIFEST_SCHEMA, build_manifest
from .reuse import ReuseIndex, ReusePlan
from .targeted import TargetedSearch, seed_sites

__all__ = [
    "MANIFEST_SCHEMA",
    "ReuseIndex",
    "ReusePlan",
    "TargetedSearch",
    "build_manifest",
    "seed_sites",
]
