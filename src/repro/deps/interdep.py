"""Inter-transaction dependency inference (paper §3.3).

Provenance-tagged unknowns in request signatures name the response they
came from (``response:<txn>:<path>``); intersecting request-originating
objects with response-originated objects reduces to scanning those tags.
Field sensitivity comes for free: the tag records the exact response path,
and the request side records which part (URI, body, header) embeds it.
"""

from __future__ import annotations

from ..signature.lang import Term, Unknown
from .transactions import Dependency, Transaction


def _scan_term(term: Term | None, dst: Transaction, dst_field: str,
               known_ids: set[int]) -> list[Dependency]:
    if term is None:
        return []
    out: list[Dependency] = []
    for t in term.walk():
        if not isinstance(t, Unknown) or not t.origin:
            continue
        if not t.origin.startswith("response:"):
            continue
        _, ids, path = t.origin.split(":", 2)
        for sid in ids.split(","):
            src = int(sid)
            if src == dst.txn_id or src not in known_ids:
                continue
            out.append(
                Dependency(
                    src_txn=src,
                    src_path="$." + path if path != "$" else "$",
                    dst_txn=dst.txn_id,
                    dst_field=dst_field,
                )
            )
    return out


def infer_dependencies(
    transactions: list[Transaction], *, span=None
) -> list[Dependency]:
    """Populate ``depends_on`` on every transaction and return all edges.
    ``span`` (a live :class:`repro.obs.tracer.Span`) gains the scanned /
    inferred counters when provided."""
    known_ids = {t.txn_id for t in transactions}
    edges: list[Dependency] = []
    for txn in transactions:
        deps: list[Dependency] = []
        deps += _scan_term(txn.request.uri, txn, "uri", known_ids)
        deps += _scan_term(txn.request.body, txn, "body", known_ids)
        for name, value in txn.request.headers:
            deps += _scan_term(value, txn, f"header:{name}", known_ids)
        # dedupe
        seen: set[str] = set()
        unique = []
        for d in deps:
            key = str(d)
            if key not in seen:
                seen.add(key)
                unique.append(d)
        txn.depends_on = unique
        edges.extend(unique)
    if span is not None:
        span.count("transactions_scanned", len(transactions))
        span.count("edges_inferred", len(edges))
    return edges


def dependency_graph(transactions: list[Transaction]):
    """The transaction dependency graph as a ``networkx.MultiDiGraph`` —
    nodes are transaction ids; parallel edges carry (src_path, dst_field)
    labels (one transaction may feed another through several fields, as
    radio reddit's login does via modhash *and* cookie)."""
    import networkx as nx

    g = nx.MultiDiGraph()
    for txn in transactions:
        g.add_node(
            txn.txn_id,
            method=txn.request.method,
            uri=txn.request.uri_regex,
            consumers=sorted(txn.response.consumers),
        )
    for txn in transactions:
        for d in txn.depends_on:
            g.add_edge(d.src_txn, d.dst_txn, src_path=d.src_path, dst_field=d.dst_field)
    return g


def render_graph(transactions: list[Transaction]) -> str:
    """Human-readable dependency graph (the Table 3/4 right-hand columns)."""
    lines = []
    for txn in sorted(transactions, key=lambda t: t.txn_id):
        deps = ", ".join(f"#{d.src_txn}{d.src_path}" for d in txn.depends_on) or "-"
        consumers = ",".join(sorted(txn.response.consumers)) or ""
        suffix = f" => {consumers}" if consumers else ""
        lines.append(f"#{txn.txn_id} {txn.request.method} <- {deps}{suffix}")
    return "\n".join(lines)


__all__ = ["dependency_graph", "infer_dependencies", "render_graph"]
