"""Slice-based request↔response pairing via disjoint sub-slices (paper
§3.3, Figure 5).

When multiple requests and responses share a demarcation point through
reused code (a common ``common2()`` helper), context-insensitive
information-flow analysis finds paths from every request to every response.
The paper's fix: preprocess the slices into *disjoint* code segments —
parts reachable from exactly one request (or response) context — and pair
request context A with response handler X only when a path connects their
disjoint segments.

The production pipeline pairs by construction (context-sensitive signature
interpretation); this module implements the paper's slice-level algorithm
for validation and for regenerating Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph
from ..taint.slices import SliceResult


@dataclass
class SliceContexts:
    """A slice split into per-context disjoint segments."""

    #: context id (an entry/terminal method id) -> methods only it reaches
    disjoint: dict[str, set[str]] = field(default_factory=dict)
    #: methods shared by more than one context
    shared: set[str] = field(default_factory=set)


def split_contexts(sl: SliceResult, *, entries: bool,
                   exclude: set[str] | frozenset[str] = frozenset()) -> SliceContexts:
    """Split a slice into contexts.

    ``entries=True`` (request slices): contexts are *entry* methods — slice
    methods never called from inside the slice.  ``entries=False``
    (response slices): contexts are *terminal* handlers — slice methods
    that call no further slice methods.  ``exclude`` removes methods that
    must not become contexts (the demarcation point's own method is plumbing,
    not a handler).
    """
    methods = sl.methods
    out_edges: dict[str, set[str]] = {m: set() for m in methods}
    in_edges: dict[str, set[str]] = {m: set() for m in methods}
    for site, callee in sl.call_edges:
        if site.method_id in methods and callee in methods:
            out_edges[site.method_id].add(callee)
            in_edges[callee].add(site.method_id)

    if entries:
        roots = [m for m in methods if not in_edges[m] and m not in exclude]
        adjacency = out_edges
    else:
        roots = [m for m in methods if not out_edges[m] and m not in exclude]
        adjacency = in_edges  # walk towards callers: who feeds this handler

    reach: dict[str, set[str]] = {}
    for root in roots:
        seen: set[str] = set()
        stack = [root]
        while stack:
            m = stack.pop()
            if m in seen:
                continue
            seen.add(m)
            stack.extend(adjacency.get(m, ()))
        reach[root] = seen

    counts: dict[str, int] = {}
    for seen in reach.values():
        for m in seen:
            counts[m] = counts.get(m, 0) + 1
    result = SliceContexts()
    for root, seen in reach.items():
        result.disjoint[root] = {m for m in seen if counts[m] == 1}
    result.shared = {m for m, c in counts.items() if c > 1}
    return result


@dataclass
class Pairing:
    request_context: str
    response_context: str


def pair_slices(
    request_slice: SliceResult,
    response_slice: SliceResult,
    callgraph: CallGraph,
    dp_method: str | None = None,
) -> list[Pairing]:
    """Pair request contexts with response handlers through disjoint
    segments: context A pairs with handler X when X is call-reachable from
    A's disjoint segment without passing through another request context's
    disjoint segment.  ``dp_method`` — the method containing the shared
    demarcation point — never counts as a context of its own."""
    exclude = {dp_method} if dp_method else set()
    req = split_contexts(request_slice, entries=True, exclude=exclude)
    resp = split_contexts(response_slice, entries=False, exclude=exclude)

    pairings: list[Pairing] = []
    for r_ctx, r_disjoint in req.disjoint.items():
        start = r_disjoint | {r_ctx}
        forbidden = set()
        for other, other_disjoint in req.disjoint.items():
            if other != r_ctx:
                forbidden |= other_disjoint
        reachable: set[str] = set()
        stack = list(start)
        while stack:
            m = stack.pop()
            if m in reachable or m in forbidden:
                continue
            reachable.add(m)
            for site in callgraph.sites_in(m):
                stack.extend(callgraph.callees_of(site.ref))
        for t_ctx, t_disjoint in resp.disjoint.items():
            targets = t_disjoint | {t_ctx}
            if targets & reachable:
                pairings.append(Pairing(r_ctx, t_ctx))
    # Degenerate case: everything shared (a single context) — pair directly.
    if not pairings and len(req.disjoint) == 1 and len(resp.disjoint) >= 1:
        r_ctx = next(iter(req.disjoint))
        for t_ctx in resp.disjoint:
            pairings.append(Pairing(r_ctx, t_ctx))
    return pairings


__all__ = ["Pairing", "SliceContexts", "pair_slices", "split_contexts"]
