"""Message dependency analysis: transactions, pairing, inter-transaction
dependencies and consumption tracking."""

from .interdep import dependency_graph, infer_dependencies, render_graph
from .pairing import Pairing, SliceContexts, pair_slices, split_contexts
from .transactions import (
    Dependency,
    RequestSig,
    ResponseSig,
    Transaction,
    from_record,
)

__all__ = [name for name in dir() if not name.startswith("_")]
