"""Reconstructed HTTP transactions — the pipeline's primary output.

An HTTP transaction (paper §2) consists of URI, request data (header,
mime-type and body), request method, and response data.  Signatures are
exposed both as terms (the internal tree form) and compiled regexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.statements import StmtRef
from ..semantics.avals import RequestAV
from ..signature.builder import TxnRecord
from ..signature.lang import (
    Const,
    JsonArray,
    JsonObject,
    Term,
    XmlElement,
    constant_keywords,
    origins_of,
)
from ..signature.regex import to_regex


def _body_kind(term: Term | None, mime: str | None) -> str | None:
    if term is None:
        return None
    if isinstance(term, (JsonObject, JsonArray)):
        return "json"
    if isinstance(term, XmlElement):
        return "xml"
    if mime == "application/x-www-form-urlencoded":
        return "query"
    # query strings are recognisable from k=v& shapes in the constants
    consts = "".join(t.text for t in term.walk() if isinstance(t, Const))
    if "=" in consts:
        return "query"
    if consts.lstrip().startswith("<"):
        return "xml"
    if consts.lstrip().startswith("{"):
        return "json"
    return "text"


@dataclass
class RequestSig:
    method: str
    uri: Term
    headers: tuple[tuple[str, Term], ...] = ()
    body: Term | None = None
    mime: str | None = None
    body_origins: frozenset[str] = frozenset()

    @property
    def uri_regex(self) -> str:
        return to_regex(self.uri)

    @property
    def body_regex(self) -> str | None:
        return to_regex(self.body) if self.body is not None else None

    @property
    def body_kind(self) -> str | None:
        return _body_kind(self.body, self.mime)

    @property
    def keywords(self) -> list[str]:
        out = constant_keywords(self.uri)
        if self.body is not None:
            out += constant_keywords(self.body)
        return out

    @property
    def origins(self) -> set[str]:
        out = origins_of(self.uri)
        if self.body is not None:
            out |= origins_of(self.body)
        for _, v in self.headers:
            out |= origins_of(v)
        return out

    @property
    def is_dynamic(self) -> bool:
        """True when the entire URI is derived from prior responses — the
        "dynamically-derived URI" class of the TED case study (Table 4)."""
        non_resp = [
            t
            for t in self.uri.walk()
            if isinstance(t, Const) and t.text.strip()
        ]
        return not non_resp and any(
            o.startswith("response:") or o == "database" for o in origins_of(self.uri)
        )

    @staticmethod
    def from_aval(request: RequestAV) -> "RequestSig":
        return RequestSig(
            method=request.method,
            uri=request.uri,
            headers=request.headers,
            body=request.body,
            mime=request.mime,
            body_origins=request.body_origins,
        )


@dataclass
class ResponseSig:
    kind: str  # "json" | "xml" | "text" | "binary" | "unknown"
    body: Term | None = None
    consumers: frozenset[str] = frozenset()

    @property
    def body_regex(self) -> str | None:
        return to_regex(self.body) if self.body is not None else None

    @property
    def has_body(self) -> bool:
        return self.body is not None

    @property
    def keywords(self) -> list[str]:
        return constant_keywords(self.body) if self.body is not None else []


@dataclass
class Dependency:
    """Field-granularity inter-transaction dependency (paper §3.3):
    request field of ``dst`` originates from response path of ``src``."""

    src_txn: int
    src_path: str  # e.g. "$.modhash" or "$.songs.[].relay"
    dst_txn: int
    dst_field: str  # "uri" | "body" | "header:<name>"

    def __str__(self) -> str:
        return f"txn{self.src_txn}[{self.src_path}] -> txn{self.dst_txn}.{self.dst_field}"


@dataclass
class Transaction:
    txn_id: int
    site: StmtRef
    root: str
    request: RequestSig
    response: ResponseSig
    consumer: str | None = None
    depends_on: list[Dependency] = field(default_factory=list)

    @property
    def has_pair(self) -> bool:
        """Request paired with a response body the app actually processes."""
        return self.response.has_body

    @property
    def is_identified(self) -> bool:
        """A signature counts as identified when it carries constant content
        (URI prefix, query keys or body structure).  Wildcard-only output —
        what intent-fed or multi-hop-async construction degrades to (§3.4,
        §5.1) — does not count."""
        uri_consts = [
            t.text for t in self.request.uri.walk()
            if isinstance(t, Const) and t.text.strip()
        ]
        if uri_consts:
            return True
        if self.request.body is not None and constant_keywords(self.request.body):
            return True
        # dynamic URIs wholly derived from a prior response are identified:
        # the dependency itself is the information (TED #4/#5/#7/#8).
        return self.request.is_dynamic

    def describe(self) -> str:
        lines = [f"{self.request.method} {self.request.uri_regex}"]
        for name, value in self.request.headers:
            lines.append(f"  {name}: {to_regex(value, anchored=False)}")
        if self.request.body is not None:
            lines.append(f"  body[{self.request.body_kind}]: {self.request.body}")
        if self.response.has_body:
            lines.append(f"  -> response[{self.response.kind}]: {self.response.body}")
        for c in sorted(self.response.consumers):
            lines.append(f"  -> consumed by: {c}")
        for d in self.depends_on:
            lines.append(f"  <- {d}")
        return "\n".join(lines)


def from_record(record: TxnRecord) -> Transaction:
    acc = record.acc
    response = ResponseSig(
        kind=acc.kind if acc is not None else "unknown",
        body=record.response_term,
        consumers=frozenset(acc.consumers) if acc is not None else frozenset(),
    )
    return Transaction(
        txn_id=record.txn_id,
        site=record.site,
        root=record.root,
        request=RequestSig.from_aval(record.request),
        response=response,
        consumer=record.consumer,
    )


__all__ = [
    "Dependency",
    "RequestSig",
    "ResponseSig",
    "Transaction",
    "from_record",
]
