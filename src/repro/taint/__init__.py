"""Bidirectional static taint analysis (the FlowDroid substitute).

The public names are resolved lazily: ``repro.perf.index`` imports
``taint.defuse`` while ``taint.engine`` imports ``perf.index`` back, so an
eager ``from .engine import ...`` here would turn any import that reaches
``repro.perf`` first into a circular-import error.
"""

from typing import Any

_LAZY = {
    "DefUseInfo": ("defuse", "DefUseInfo"),
    "compute_defuse": ("defuse", "compute_defuse"),
    "defuse_of": ("defuse", "defuse_of"),
    "NOFLOW_CALLS": ("engine", "NOFLOW_CALLS"),
    "TaintConfig": ("engine", "TaintConfig"),
    "TaintEngine": ("engine", "TaintEngine"),
    "SliceResult": ("slices", "SliceResult"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), attr)
    globals()[name] = value
    return value
