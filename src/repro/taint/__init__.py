"""Bidirectional static taint analysis (the FlowDroid substitute)."""

from .defuse import DefUseInfo, compute_defuse, defuse_of
from .engine import NOFLOW_CALLS, TaintConfig, TaintEngine
from .slices import SliceResult

__all__ = [name for name in dir() if not name.startswith("_")]
