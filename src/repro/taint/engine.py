"""Bidirectional taint propagation — the FlowDroid substitute (paper §3.1).

Two directions share one engine:

* **Backward** (request slices): starting from the request object at a
  demarcation point, find every statement whose effects flow *into* it.
  Implements the paper's inverted propagation rules — a tainted LHS taints
  the RHS, callee-argument taint propagates to caller arguments, and "all
  statements that include tainted objects" join the slice (open-ended
  propagation, §3.1).
* **Forward** (response slices): starting from the response object, find
  every statement the network data flows *to* — through locals, heap
  fields, call arguments, returns and framework-linked continuations
  (AsyncTask's ``doInBackground → onPostExecute``).

Heap handling is field-based (a taint on ``C.f`` covers all instances),
which over-approximates — safe for slicing, and precision for pairing is
recovered by disjoint sub-slices exactly as in the paper (§3.3).

Asynchronous implicit flows (a callback stores into a field; a later event
reads it, §3.4) cross an *event boundary*.  The engine charges one hop per
boundary crossing and stops at ``max_async_hops`` — 1 when the paper's
heuristic is enabled, 0 when disabled; multi-hop chains are recorded in
``missed_async_flows``, reproducing the paper's stated limitation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..cfg.callgraph import CallGraph
from ..cfg.cfg import cfg_of
from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import (
    AssignStmt,
    IdentityStmt,
    ReturnStmt,
    Stmt,
    StmtRef,
)
from ..ir.values import (
    ArrayRef,
    Constant,
    FieldSig,
    InstanceFieldRef,
    InvokeExpr,
    Local,
    ParamRef,
    StaticFieldRef,
    ThisRef,
    Value,
    walk_values,
)
from ..perf.index import ProgramIndex, field_key
from .defuse import defuse_of
from .slices import SliceResult

#: Library calls through which no data flows (logging, metrics).
NOFLOW_CALLS = frozenset(
    {
        ("android.util.Log", "d"),
        ("android.util.Log", "e"),
        ("android.util.Log", "i"),
        ("android.util.Log", "v"),
        ("android.util.Log", "w"),
        ("java.lang.System", "currentTimeMillis"),
        ("java.lang.Thread", "sleep"),
        ("java.io.PrintStream", "println"),
    }
)

#: ``NOFLOW_CALLS`` regrouped by class so the inner propagation loop checks
#: membership without building a ``(class, name)`` tuple per invoke.
_NOFLOW_BY_CLASS: dict[str, frozenset[str]] = {
    cls: frozenset(n for c, n in NOFLOW_CALLS if c == cls)
    for cls in {c for c, _ in NOFLOW_CALLS}
}


@dataclass
class TaintConfig:
    """Knobs mirroring the paper's evaluation setup (§5.1)."""

    #: async-event heuristic: 1 hop when enabled (closed-source runs),
    #: 0 hops when disabled (open-source runs).
    max_async_hops: int = 1
    #: safety valve against pathological programs
    max_worklist_items: int = 2_000_000
    #: record per-statement provenance parent links (``SliceResult.prov``)
    #: for ``repro explain``; off by default to keep the hot loop clean.
    record_provenance: bool = False


class TaintEngine:
    def __init__(
        self,
        program: Program,
        callgraph: CallGraph,
        config: TaintConfig | None = None,
        *,
        event_roots: dict[str, frozenset[str]] | None = None,
        linked_returns: dict[str, list[tuple[str, int]]] | None = None,
        index: ProgramIndex | None = None,
    ) -> None:
        self.program = program
        self.callgraph = callgraph
        self.config = config or TaintConfig()
        #: shared memoized artifacts; None runs the reference (serial) path
        self.index = index
        #: method id -> set of entry-point roots whose event may run it.
        self.event_roots = event_roots or {}
        #: method id -> [(continuation method id, param index receiving the
        #: return value)] — AsyncTask-style framework result plumbing.
        self.linked_returns = linked_returns or {}
        #: preloaded so every recording site pays one attribute test, not a
        #: config dereference; immutable per engine, so safe under the
        #: engine-per-worker concurrency model
        self._record_prov = self.config.record_provenance
        #: while a slice is being built, the live ``SliceResult.visited``
        #: set — ``_method`` is the one accessor through which the engine
        #: resolves any body, so recording there captures every method
        #: whose code could have influenced the slice (the incremental
        #: engine's reuse precondition)
        self._visited: set[str] | None = None
        self._reach_cache: dict[str, list[set[int]]] = {}
        #: per-method (defuse, reach, reach-to, mention-mask) bundle so the
        #: index fast path pays one dict probe per step, not four
        self._tables: dict[str, tuple] = {}
        self._field_stores: dict[tuple[str, str], list[StmtRef]] | None = None
        self._field_loads: dict[tuple[str, str], list[StmtRef]] | None = None

    # ------------------------------------------------------------------ utils
    def _method(self, method_id: str) -> Method:
        visited = self._visited
        if visited is not None:
            visited.add(method_id)
        return self.program.method_by_id(method_id)

    def _reach(self, method: Method) -> list[set[int]]:
        """Forward statement-level reachability sets (reflexive)."""
        cached = self._reach_cache.get(method.method_id)
        if cached is not None:
            return cached
        cfg = cfg_of(method)
        n = len(method.body.statements) if method.body else 0
        succ = cfg.stmt_succ
        reach: list[set[int]] = [set() for _ in range(n)]
        # Reverse-topological accumulation with a fixpoint for loops.
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                acc = {i}
                for s in succ.get(i, ()):
                    acc |= reach[s]
                    acc.add(s)
                if not acc <= reach[i]:
                    reach[i] |= acc
                    changed = True
        self._reach_cache[method.method_id] = reach
        return reach

    def _field_key(self, f: FieldSig) -> tuple[str, str]:
        return field_key(f)

    def _index_fields(self) -> None:
        if self._field_stores is not None:
            return
        if self.index is not None:
            self._field_stores = self.index.field_stores
            self._field_loads = self.index.field_loads
            return
        stores: dict[tuple[str, str], list[StmtRef]] = {}
        loads: dict[tuple[str, str], list[StmtRef]] = {}
        for method in self.program.methods():
            if method.body is None:
                continue
            for stmt in method.body:
                if isinstance(stmt, AssignStmt):
                    tgt = stmt.target
                    if isinstance(tgt, (InstanceFieldRef, StaticFieldRef)):
                        stores.setdefault(
                            self._field_key(tgt.field), []
                        ).append(method.stmt_ref(stmt))
                    rhs = stmt.rhs
                    if isinstance(rhs, (InstanceFieldRef, StaticFieldRef)):
                        loads.setdefault(
                            self._field_key(rhs.field), []
                        ).append(method.stmt_ref(stmt))
        self._field_stores = stores
        self._field_loads = loads

    def _cross_event_cost(self, from_mid: str, to_mid: str) -> int:
        """1 if the flow crosses an asynchronous event boundary, else 0."""
        if not self.event_roots:
            return 0
        a = self.event_roots.get(from_mid)
        b = self.event_roots.get(to_mid)
        if not a or not b:
            return 0
        return 0 if a & b else 1

    @staticmethod
    def _is_noflow(expr: InvokeExpr) -> bool:
        names = _NOFLOW_BY_CLASS.get(expr.sig.class_name)
        return names is not None and expr.sig.name in names

    # ---------------------------------------------------------------- backward
    def backward_slice(self, seeds: list[tuple[StmtRef, Value]]) -> SliceResult:
        """Request-slice extraction: inverted taint propagation from seeds."""
        self._index_fields()
        result = SliceResult("backward")
        self._visited = result.visited
        seen: dict[tuple, int] = {}
        queue: deque[tuple[StmtRef, Local, int]] = deque()
        enqueued = widened = 0

        def need(ref: StmtRef, value: Value, hops: int) -> None:
            nonlocal enqueued, widened
            if isinstance(value, Constant):
                return
            if not isinstance(value, Local):
                for op in walk_values(value):
                    if isinstance(op, Local):
                        need(ref, op, hops)
                return
            key = (ref.method_id, ref.index, value.name)
            prev = seen.get(key)
            if prev is not None and prev <= hops:
                return
            if prev is not None:
                widened += 1
            seen[key] = hops
            enqueued += 1
            queue.append((ref, value, hops))

        for ref, value in seeds:
            result.stmts.add(ref)
            if self._record_prov:
                result.prov.setdefault(ref, None)
            need(ref, value, 0)

        budget = self.config.max_worklist_items
        while queue and budget:
            budget -= 1
            ref, local, hops = queue.popleft()
            self._backward_step(ref, local, hops, result, need)
        self._finish_visited(result)
        result.stats = {
            "worklist_iterations": self.config.max_worklist_items - budget,
            "facts_enqueued": enqueued,
            "hop_widenings": widened,
            "stmts": len(result.stmts),
            "missed_async_flows": len(result.missed_async_flows),
        }
        return result

    def _slice_tables(self, method: Method) -> tuple:
        """(defuse, reach masks, reach-to masks, mention masks) for the
        index fast paths, bundled under one engine-local probe."""
        mid = method.method_id
        tables = self._tables.get(mid)
        if tables is None:
            idx = self.index
            tables = (
                idx.defuse_of(method),
                idx.reach_masks(method),
                idx.reach_to_masks(method),
                idx.mention_masks(method),
            )
            self._tables[mid] = tables
        return tables

    def _backward_step(self, ref, local, hops, result, need) -> None:
        method = self._method(ref.method_id)
        assert method.body is not None
        if self.index is not None:
            du, masks, reach_to, mention = self._slice_tables(method)
        else:
            du = defuse_of(method)
        use_stmt = method.stmt_at(ref.index)
        result.tainted_locals.add((method.method_id, local))
        defs = du.reaching_defs(use_stmt, local)
        if not defs and local in set(use_stmt.defs()):
            defs = (ref.index,)
        if self.index is not None:
            # fast path: the def→use region is a three-way bitmask
            # intersection (statements the def reaches ∩ statements that
            # reach the use ∩ statements mentioning the local) instead of a
            # per-definition full-body scan.
            use_mask = reach_to[ref.index] & mention.get(local, 0)
            mid = method.method_id
            for d_idx in defs:
                region = (masks[d_idx] & use_mask) | (1 << d_idx)
                while region:
                    low = region & -region
                    s_idx = low.bit_length() - 1
                    region ^= low
                    stmt = method.stmt_at(s_idx)
                    s_ref = StmtRef(mid, s_idx)
                    result.stmts.add(s_ref)
                    if self._record_prov:
                        result.prov.setdefault(
                            s_ref, None if s_ref == ref else ref
                        )
                    self._backward_inflows(method, stmt, local, hops, result, need)
            return
        reach = self._reach(method)
        for d_idx in defs:
            region = {
                s.index
                for s in method.body
                if (d_idx in (s.index,) or s.index in reach[d_idx])
                and ref.index in reach[s.index] | {s.index}
                and self._mentions(s, local)
            }
            region.add(d_idx)
            for s_idx in region:
                stmt = method.stmt_at(s_idx)
                s_ref = StmtRef(method.method_id, s_idx)
                result.stmts.add(s_ref)
                if self._record_prov:
                    result.prov.setdefault(s_ref, None if s_ref == ref else ref)
                self._backward_inflows(method, stmt, local, hops, result, need)

    @staticmethod
    def _mentions(stmt: Stmt, local: Local) -> bool:
        if local in set(stmt.defs()):
            return True
        for use in stmt.uses():
            for v in walk_values(use):
                if v == local:
                    return True
        return False

    def _backward_inflows(self, method, stmt, local, hops, result, need) -> None:
        ref = method.stmt_ref(stmt)
        # 1) the statement (re)defines the tainted local: chase the RHS
        if isinstance(stmt, AssignStmt) and stmt.target == local:
            self._backward_rhs(method, stmt, stmt.rhs, hops, result, need)
        elif isinstance(stmt, IdentityStmt) and stmt.target == local:
            self._backward_identity(method, stmt, hops, result, need)
        # 2) mutation through the tainted object
        expr = stmt.invoke
        if expr is not None and expr.base == local:
            if not self._is_noflow(expr):
                for arg in expr.args:
                    need(ref, arg, hops)
                for callee_id in self.callgraph.callees_of(ref):
                    result.call_edges.add((ref, callee_id))
        if isinstance(stmt, AssignStmt):
            tgt = stmt.target
            if isinstance(tgt, InstanceFieldRef) and tgt.base == local:
                need(ref, stmt.rhs, hops)
            if isinstance(tgt, ArrayRef) and tgt.base == local:
                need(ref, stmt.rhs, hops)

    def _backward_rhs(self, method, stmt, rhs, hops, result, need) -> None:
        ref = method.stmt_ref(stmt)
        if isinstance(rhs, InvokeExpr):
            if self._is_noflow(rhs):
                return
            callees = self.callgraph.callees_of(ref)
            for callee_id in callees:
                result.call_edges.add((ref, callee_id))
                callee = self._method(callee_id)
                if callee.body is None:
                    continue
                for r in callee.body:
                    if isinstance(r, ReturnStmt) and r.value is not None:
                        r_ref = callee.stmt_ref(r)
                        result.stmts.add(r_ref)
                        if self._record_prov:
                            result.prov.setdefault(r_ref, ref)
                        need(r_ref, r.value, hops)
            if not callees or self.callgraph.is_library_call(ref):
                if rhs.base is not None:
                    need(ref, rhs.base, hops)
                for arg in rhs.args:
                    need(ref, arg, hops)
            return
        if isinstance(rhs, (InstanceFieldRef, StaticFieldRef)):
            result.fields.add(rhs.field)
            if isinstance(rhs, InstanceFieldRef):
                need(ref, rhs.base, hops)
            for store_ref in self._field_stores.get(self._field_key(rhs.field), ()):
                cost = self._cross_event_cost(store_ref.method_id, ref.method_id)
                if hops + cost > self.config.max_async_hops:
                    result.missed_async_flows.add(store_ref)
                    continue
                store_m = self._method(store_ref.method_id)
                store_stmt = store_m.stmt_at(store_ref.index)
                result.stmts.add(store_ref)
                if self._record_prov:
                    result.prov.setdefault(store_ref, ref)
                assert isinstance(store_stmt, AssignStmt)
                need(store_ref, store_stmt.rhs, hops + cost)
                tgt = store_stmt.target
                if isinstance(tgt, InstanceFieldRef):
                    need(store_ref, tgt.base, hops + cost)
            return
        # plain values: chase every local operand
        for v in walk_values(rhs):
            if isinstance(v, Local):
                need(method.stmt_ref(stmt), v, hops)

    def _backward_identity(self, method, stmt, hops, result, need) -> None:
        rhs = stmt.rhs
        ident_ref = method.stmt_ref(stmt)
        callers = self.callgraph.callers_of(method.method_id)
        # Crossing from a boundary callback (posted runnable, timer task)
        # back to its registration site moves to an earlier asynchronous
        # event — that is exactly the implicit flow §3.4's heuristic tracks,
        # so it costs a hop.  Same-event calls (incl. AsyncTask bodies,
        # whose roots are inherited) cost nothing.
        if isinstance(rhs, ParamRef):
            if not callers:
                result.origin_params.add((method.method_id, rhs.index))
            for site in callers:
                caller = self._method(site.method_id)
                expr = caller.stmt_at(site.index).invoke
                result.stmts.add(site)
                if self._record_prov:
                    result.prov.setdefault(site, ident_ref)
                result.call_edges.add((site, method.method_id))
                if expr is not None and rhs.index < len(expr.args):
                    cost = self._cross_event_cost(site.method_id, method.method_id)
                    if hops + cost > self.config.max_async_hops:
                        result.missed_async_flows.add(site)
                        continue
                    need(site, expr.args[rhs.index], hops + cost)
        elif isinstance(rhs, ThisRef):
            for site in callers:
                caller = self._method(site.method_id)
                expr = caller.stmt_at(site.index).invoke
                if expr is None:
                    continue
                cost = self._cross_event_cost(site.method_id, method.method_id)
                if hops + cost > self.config.max_async_hops:
                    result.missed_async_flows.add(site)
                    continue
                result.stmts.add(site)
                if self._record_prov:
                    result.prov.setdefault(site, ident_ref)
                result.call_edges.add((site, method.method_id))
                receiver = self._receiver_value(expr, method.class_name)
                if receiver is not None:
                    need(site, receiver, hops + cost)

    def _receiver_value(self, expr: InvokeExpr, callee_class: str):
        """The caller-side value playing ``this`` for this edge.  For
        implicit callback edges (Handler.post(runnable) → Runnable.run) the
        receiver is the *argument* of the callee's type, not the base."""
        for arg in expr.args:
            if isinstance(arg, Local) and callee_class in set(
                self.program.superclasses(arg.type.name)
            ):
                return arg
        if isinstance(expr.base, Local):
            return expr.base
        return None

    # ----------------------------------------------------------------- forward
    def forward_slice(self, seeds: list[tuple[StmtRef, Value]]) -> SliceResult:
        """Response-slice extraction: standard taint propagation from seeds."""
        self._index_fields()
        result = SliceResult("forward")
        self._visited = result.visited
        seen: dict[tuple, int] = {}
        queue: deque[tuple[StmtRef, Local, int]] = deque()
        enqueued = widened = 0

        def fact(ref: StmtRef, value: Value, hops: int) -> None:
            """``value`` holds tainted data from statement ``ref`` onward."""
            nonlocal enqueued, widened
            if not isinstance(value, Local):
                return
            key = (ref.method_id, ref.index, value.name)
            prev = seen.get(key)
            if prev is not None and prev <= hops:
                return
            if prev is not None:
                widened += 1
            seen[key] = hops
            enqueued += 1
            queue.append((ref, value, hops))

        for ref, value in seeds:
            result.stmts.add(ref)
            if self._record_prov:
                result.prov.setdefault(ref, None)
            fact(ref, value, 0)

        budget = self.config.max_worklist_items
        while queue and budget:
            budget -= 1
            ref, local, hops = queue.popleft()
            self._forward_step(ref, local, hops, result, fact)
        self._finish_visited(result)
        result.stats = {
            "worklist_iterations": self.config.max_worklist_items - budget,
            "facts_enqueued": enqueued,
            "hop_widenings": widened,
            "stmts": len(result.stmts),
            "missed_async_flows": len(result.missed_async_flows),
        }
        return result

    def _uses_after(self, method: Method, local: Local, from_idx: int) -> list[int]:
        if self.index is not None:
            du, masks, _, _ = self._slice_tables(method)
            mask = masks[from_idx]
            return [s for s in du.use_sites.get(local, ()) if (mask >> s) & 1]
        du = defuse_of(method)
        sites = du.use_sites.get(local, [])
        reach = self._reach(method)
        return [s for s in sites if s in reach[from_idx] or s == from_idx]

    def _forward_step(self, ref, local, hops, result, fact) -> None:
        method = self._method(ref.method_id)
        assert method.body is not None
        result.tainted_locals.add((method.method_id, local))
        for u_idx in self._uses_after(method, local, ref.index):
            stmt = method.stmt_at(u_idx)
            u_ref = StmtRef(method.method_id, u_idx)
            result.stmts.add(u_ref)
            if self._record_prov:
                result.prov.setdefault(u_ref, None if u_ref == ref else ref)
            self._forward_outflows(method, stmt, u_ref, local, hops, result, fact)

    def _forward_outflows(self, method, stmt, ref, local, hops, result, fact) -> None:
        expr = stmt.invoke
        if expr is not None and not self._is_noflow(expr):
            callees = self.callgraph.callees_of(ref)
            is_arg = local in expr.args
            is_base = expr.base == local
            for callee_id in callees:
                callee = self._method(callee_id)
                if callee.body is None:
                    continue
                cost = self._cross_event_cost(method.method_id, callee_id)
                if hops + cost > self.config.max_async_hops:
                    result.missed_async_flows.add(ref)
                    continue
                result.call_edges.add((ref, callee_id))
                if is_arg:
                    for i, arg in enumerate(expr.args):
                        if arg == local and i < len(callee.param_locals):
                            p = callee.param_locals[i]
                            fact(self._param_ref(callee, p), p, hops + cost)
                if is_base and callee.this_local is not None:
                    t = callee.this_local
                    fact(self._param_ref(callee, t), t, hops + cost)
            if not callees or self.callgraph.is_library_call(ref):
                # library call: taint flows into the result and the receiver
                if isinstance(stmt, AssignStmt) and isinstance(stmt.target, Local):
                    fact(ref, stmt.target, hops)
                if (is_arg or is_base) and isinstance(expr.base, Local) and expr.base != local:
                    fact(ref, expr.base, hops)
        if isinstance(stmt, AssignStmt):
            tgt = stmt.target
            rhs_locals = {
                v for v in walk_values(stmt.rhs) if isinstance(v, Local)
            }
            index_only = (
                isinstance(tgt, ArrayRef)
                and tgt.index == local
                and local not in rhs_locals
            )
            if local in rhs_locals or (
                isinstance(tgt, (InstanceFieldRef, ArrayRef)) and not index_only
            ):
                if isinstance(tgt, Local) and local in rhs_locals:
                    fact(ref, tgt, hops)
                elif isinstance(tgt, (InstanceFieldRef, StaticFieldRef)) and local in rhs_locals:
                    result.fields.add(tgt.field)
                    self._taint_field_loads(tgt.field, ref, hops, result, fact)
                elif isinstance(tgt, ArrayRef) and local in rhs_locals:
                    if isinstance(tgt.base, Local):
                        fact(ref, tgt.base, hops)
        if isinstance(stmt, ReturnStmt) and stmt.value == local:
            for site in self.callgraph.callers_of(method.method_id):
                caller = self._method(site.method_id)
                call_stmt = caller.stmt_at(site.index)
                result.stmts.add(site)
                if self._record_prov:
                    result.prov.setdefault(site, ref)
                result.call_edges.add((site, method.method_id))
                if isinstance(call_stmt, AssignStmt) and isinstance(call_stmt.target, Local):
                    fact(site, call_stmt.target, hops)
            for succ_mid, p_idx in self.linked_returns.get(method.method_id, ()):
                succ = self._method(succ_mid)
                if succ.body is None or p_idx >= len(succ.param_locals):
                    continue
                p = succ.param_locals[p_idx]
                fact(self._param_ref(succ, p), p, hops)

    def _taint_field_loads(self, field: FieldSig, ref, hops, result, fact) -> None:
        for load_ref in self._field_loads.get(self._field_key(field), ()):
            cost = self._cross_event_cost(ref.method_id, load_ref.method_id)
            if hops + cost > self.config.max_async_hops:
                result.missed_async_flows.add(load_ref)
                continue
            load_m = self._method(load_ref.method_id)
            load_stmt = load_m.stmt_at(load_ref.index)
            result.stmts.add(load_ref)
            if self._record_prov:
                result.prov.setdefault(load_ref, ref)
            if isinstance(load_stmt, AssignStmt) and isinstance(load_stmt.target, Local):
                fact(load_ref, load_stmt.target, hops + cost)

    def _finish_visited(self, result: SliceResult) -> None:
        """Close out the visited set for one slice: statements and
        hop-budget-missed flows name methods the slice depends on even when
        their bodies were never resolved through ``_method`` (a missed
        store that disappears changes the ``blocked`` report column)."""
        result.visited.update(ref.method_id for ref in result.stmts)
        result.visited.update(
            ref.method_id for ref in result.missed_async_flows
        )
        self._visited = None

    @staticmethod
    def _param_ref(method: Method, local: Local) -> StmtRef:
        assert method.body is not None
        for stmt in method.body:
            if local in set(stmt.defs()):
                return method.stmt_ref(stmt)
        return StmtRef(method.method_id, 0)


__all__ = ["NOFLOW_CALLS", "TaintConfig", "TaintEngine"]
