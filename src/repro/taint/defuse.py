"""Per-method reaching definitions and def-use chains for locals.

The taint engine propagates facts through locals flow-sensitively: a use of
local ``x`` at statement ``s`` is linked to exactly the definitions of ``x``
that reach ``s``.  Field and array cells are handled globally (field-based)
by the engine itself; this module is purely intra-procedural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.cfg import ControlFlowGraph, cfg_of
from ..ir.method import Method
from ..ir.statements import Stmt
from ..ir.values import Local, walk_values


@dataclass
class DefUseInfo:
    """Reaching-definition relation for one method.

    ``defs_reaching[(stmt_index, local)]`` — def statement indices of
    ``local`` that reach the *entry* of ``stmt_index``.
    ``uses_reached[(stmt_index, local)]`` — use statement indices that the
    definition of ``local`` at ``stmt_index`` reaches.
    """

    method: Method
    def_sites: dict[Local, list[int]] = field(default_factory=dict)
    use_sites: dict[Local, list[int]] = field(default_factory=dict)
    defs_reaching: dict[tuple[int, Local], tuple[int, ...]] = field(default_factory=dict)
    uses_reached: dict[tuple[int, Local], tuple[int, ...]] = field(default_factory=dict)

    def reaching_defs(self, stmt: Stmt, local: Local) -> tuple[int, ...]:
        return self.defs_reaching.get((stmt.index, local), ())

    def reached_uses(self, stmt: Stmt, local: Local) -> tuple[int, ...]:
        return self.uses_reached.get((stmt.index, local), ())


def _defined_local(stmt: Stmt) -> Local | None:
    for d in stmt.defs():
        if isinstance(d, Local):
            return d
    return None


def _used_locals(stmt: Stmt) -> set[Local]:
    out: set[Local] = set()
    for use in stmt.uses():
        for value in walk_values(use):
            if isinstance(value, Local):
                out.add(value)
    return out


def _reaching_bits(
    method: Method,
) -> tuple[dict[Local, list[tuple[int, int]]], dict[Local, list[int]], list[int]]:
    """The worklist core shared by both def-use variants: per-local
    definition-bit groups ``[(bit, stmt_index), ...]``, definition sites,
    and the per-statement reaching-definition bitmasks at statement entry."""
    body = method.body
    assert body is not None
    cfg: ControlFlowGraph = cfg_of(method)
    stmts = body.statements
    n = len(stmts)

    def_local: list[Local | None] = [None] * n
    def_bit: list[int] = [0] * n
    def_groups: dict[Local, list[tuple[int, int]]] = {}
    def_sites: dict[Local, list[int]] = {}
    next_id = 0
    for i, stmt in enumerate(stmts):
        local = _defined_local(stmt)
        if local is not None:
            def_local[i] = local
            def_bit[i] = next_id
            def_groups.setdefault(local, []).append((next_id, i))
            def_sites.setdefault(local, []).append(i)
            next_id += 1
    kill_mask: dict[Local, int] = {
        local: sum(1 << did for did, _ in group)
        for local, group in def_groups.items()
    }

    stmt_in = [0] * n
    stmt_out = [0] * n
    pred = cfg.stmt_pred
    succ = cfg.stmt_succ
    worklist = list(range(n - 1, -1, -1))  # pop() → statement order
    while worklist:
        i = worklist.pop()
        new_in = 0
        for p in pred.get(i, ()):
            new_in |= stmt_out[p]
        local = def_local[i]
        if local is not None:
            new_out = (new_in & ~kill_mask[local]) | (1 << def_bit[i])
        else:
            new_out = new_in
        if new_in != stmt_in[i] or new_out != stmt_out[i]:
            stmt_in[i] = new_in
            stmt_out[i] = new_out
            worklist.extend(succ.get(i, ()))
    return def_groups, def_sites, stmt_in


def compute_defuse(
    method: Method,
    stmt_uses: list[frozenset[Local]] | None = None,
) -> DefUseInfo:
    """Flow-sensitive reaching definitions via a statement-level worklist.

    ``stmt_uses`` optionally supplies the per-statement used-local sets
    (e.g. from :meth:`repro.perf.index.ProgramIndex.stmt_locals`) so the
    value trees are not re-walked here."""
    info = DefUseInfo(method)
    body = method.body
    if body is None or not body.statements:
        return info
    def_groups, info.def_sites, stmt_in = _reaching_bits(method)

    # Materialise the def→use relation.
    reached: dict[tuple[int, Local], list[int]] = {}
    for i, stmt in enumerate(body.statements):
        used = stmt_uses[i] if stmt_uses is not None else _used_locals(stmt)
        if not used:
            continue
        mask = stmt_in[i]
        for local in used:
            info.use_sites.setdefault(local, []).append(i)
            group = def_groups.get(local)
            reaching = (
                tuple(d_idx for did, d_idx in group if (mask >> did) & 1)
                if group
                else ()
            )
            info.defs_reaching[(i, local)] = reaching
            for d_idx in reaching:
                reached.setdefault((d_idx, local), []).append(i)
    info.uses_reached = {key: tuple(sites) for key, sites in reached.items()}
    return info


class LazyDefUse:
    """Query-compatible def-use view that materialises ``reaching_defs``
    entries on demand instead of for every (statement, local) pair.

    Used by the memoized index engine: taint facts only touch a subset of
    the pairs, so the full materialisation (and the ``uses_reached``
    inverse, which no analysis consumes) is wasted work there.  Answers are
    bit-for-bit equal to :func:`compute_defuse`'s."""

    __slots__ = ("method", "def_sites", "use_sites", "_def_groups", "_stmt_in", "_memo")

    def __init__(self, method: Method, stmt_uses: list[frozenset[Local]]) -> None:
        self.method = method
        self.use_sites: dict[Local, list[int]] = {}
        if method.body is None or not method.body.statements:
            self.def_sites: dict[Local, list[int]] = {}
            self._def_groups: dict[Local, list[tuple[int, int]]] = {}
            self._stmt_in: list[int] = []
        else:
            self._def_groups, self.def_sites, self._stmt_in = _reaching_bits(method)
            for i, used in enumerate(stmt_uses):
                for local in used:
                    self.use_sites.setdefault(local, []).append(i)
        self._memo: dict[tuple[int, Local], tuple[int, ...]] = {}

    def reaching_defs(self, stmt: Stmt, local: Local) -> tuple[int, ...]:
        key = (stmt.index, local)
        got = self._memo.get(key)
        if got is None:
            group = self._def_groups.get(local)
            if not group:
                got = ()
            else:
                mask = self._stmt_in[stmt.index]
                got = tuple(d_idx for did, d_idx in group if (mask >> did) & 1)
            self._memo[key] = got
        return got


_DEFUSE_CACHE: dict[int, DefUseInfo] = {}


def defuse_of(method: Method) -> DefUseInfo:
    key = id(method)
    cached = _DEFUSE_CACHE.get(key)
    if cached is None or cached.method is not method:
        cached = compute_defuse(method)
        _DEFUSE_CACHE[key] = cached
    return cached


__all__ = ["DefUseInfo", "LazyDefUse", "compute_defuse", "defuse_of"]
