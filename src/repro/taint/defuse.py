"""Per-method reaching definitions and def-use chains for locals.

The taint engine propagates facts through locals flow-sensitively: a use of
local ``x`` at statement ``s`` is linked to exactly the definitions of ``x``
that reach ``s``.  Field and array cells are handled globally (field-based)
by the engine itself; this module is purely intra-procedural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.cfg import ControlFlowGraph, cfg_of
from ..ir.method import Method
from ..ir.statements import Stmt
from ..ir.values import Local, walk_values


@dataclass
class DefUseInfo:
    """Reaching-definition relation for one method.

    ``defs_reaching[(stmt_index, local)]`` — def statement indices of
    ``local`` that reach the *entry* of ``stmt_index``.
    ``uses_reached[(stmt_index, local)]`` — use statement indices that the
    definition of ``local`` at ``stmt_index`` reaches.
    """

    method: Method
    def_sites: dict[Local, list[int]] = field(default_factory=dict)
    use_sites: dict[Local, list[int]] = field(default_factory=dict)
    defs_reaching: dict[tuple[int, Local], tuple[int, ...]] = field(default_factory=dict)
    uses_reached: dict[tuple[int, Local], tuple[int, ...]] = field(default_factory=dict)

    def reaching_defs(self, stmt: Stmt, local: Local) -> tuple[int, ...]:
        return self.defs_reaching.get((stmt.index, local), ())

    def reached_uses(self, stmt: Stmt, local: Local) -> tuple[int, ...]:
        return self.uses_reached.get((stmt.index, local), ())


def _defined_local(stmt: Stmt) -> Local | None:
    for d in stmt.defs():
        if isinstance(d, Local):
            return d
    return None


def _used_locals(stmt: Stmt) -> set[Local]:
    out: set[Local] = set()
    for use in stmt.uses():
        for value in walk_values(use):
            if isinstance(value, Local):
                out.add(value)
    return out


def compute_defuse(method: Method) -> DefUseInfo:
    """Flow-sensitive reaching definitions via a statement-level worklist."""
    info = DefUseInfo(method)
    body = method.body
    if body is None or not body.statements:
        return info
    cfg: ControlFlowGraph = cfg_of(method)

    # Enumerate definition sites.
    all_defs: list[tuple[int, Local]] = []
    def_ids: dict[tuple[int, Local], int] = {}
    for stmt in body.statements:
        local = _defined_local(stmt)
        if local is not None:
            def_ids[(stmt.index, local)] = len(all_defs)
            all_defs.append((stmt.index, local))
            info.def_sites.setdefault(local, []).append(stmt.index)
    kill_mask: dict[Local, int] = {}
    for (idx, local), did in def_ids.items():
        kill_mask[local] = kill_mask.get(local, 0) | (1 << did)

    n = len(body.statements)
    stmt_in = [0] * n
    stmt_out = [0] * n
    pred = cfg.stmt_pred
    succ = cfg.stmt_succ
    worklist = list(range(n))
    while worklist:
        i = worklist.pop()
        stmt = body.statements[i]
        new_in = 0
        for p in pred.get(i, ()):
            new_in |= stmt_out[p]
        local = _defined_local(stmt)
        if local is not None:
            new_out = (new_in & ~kill_mask[local]) | (1 << def_ids[(i, local)])
        else:
            new_out = new_in
        if new_in != stmt_in[i] or new_out != stmt_out[i]:
            stmt_in[i] = new_in
            stmt_out[i] = new_out
            worklist.extend(succ.get(i, ()))

    # Materialise the def→use relation.
    for stmt in body.statements:
        used = _used_locals(stmt)
        for local in used:
            info.use_sites.setdefault(local, []).append(stmt.index)
            reaching = tuple(
                d_idx
                for bit, (d_idx, d_local) in enumerate(all_defs)
                if d_local == local and stmt_in[stmt.index] & (1 << bit)
            )
            info.defs_reaching[(stmt.index, local)] = reaching
            for d_idx in reaching:
                key = (d_idx, local)
                info.uses_reached[key] = info.uses_reached.get(key, ()) + (stmt.index,)
    return info


_DEFUSE_CACHE: dict[int, DefUseInfo] = {}


def defuse_of(method: Method) -> DefUseInfo:
    key = id(method)
    cached = _DEFUSE_CACHE.get(key)
    if cached is None or cached.method is not method:
        cached = compute_defuse(method)
        _DEFUSE_CACHE[key] = cached
    return cached


__all__ = ["DefUseInfo", "compute_defuse", "defuse_of"]
