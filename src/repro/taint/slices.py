"""Program-slice result types shared by the taint engine and its clients."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.statements import StmtRef
from ..ir.values import FieldSig, Local


@dataclass
class SliceResult:
    """A program slice: the statements reachable by taint propagation from
    the seeds, plus the relations later phases need.

    ``direction`` is ``"backward"`` (request slice) or ``"forward"``
    (response slice).
    """

    direction: str
    stmts: set[StmtRef] = field(default_factory=set)
    #: call-graph edges the propagation traversed: (site, callee method id)
    call_edges: set[tuple[StmtRef, str]] = field(default_factory=set)
    #: heap cells the slice reads (backward) or writes (forward)
    fields: set[FieldSig] = field(default_factory=set)
    #: locals known tainted, keyed by owning method
    tainted_locals: set[tuple[str, Local]] = field(default_factory=set)
    #: framework-callback parameters reached with no further callers:
    #: (method_id, param index) — the data's external origin
    origin_params: set[tuple[str, int]] = field(default_factory=set)
    #: implicit flows skipped because they exceeded the async-hop budget
    missed_async_flows: set[StmtRef] = field(default_factory=set)
    #: every method whose body the engine examined while building this
    #: slice — a superset of ``methods``.  The incremental engine
    #: (``repro.incr``) replays a cached slice only when no method in this
    #: set changed, so under-recording here silently reuses stale slices;
    #: the engine records a method the moment it resolves its body.
    visited: set[str] = field(default_factory=set)
    #: provenance parent links (only when ``TaintConfig.record_provenance``):
    #: statement -> the statement whose processing pulled it into the slice
    #: (``None`` for seeds).  Walking parents from any statement reaches a
    #: seed, i.e. the demarcation point.
    prov: dict[StmtRef, StmtRef | None] = field(default_factory=dict)
    #: engine effort counters (worklist_iterations, facts_enqueued,
    #: hop_widenings, ...) — diagnostics only, never serialized by default
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def methods(self) -> set[str]:
        return {ref.method_id for ref in self.stmts}

    def merge(self, other: "SliceResult") -> None:
        self.stmts |= other.stmts
        self.call_edges |= other.call_edges
        self.fields |= other.fields
        self.tainted_locals |= other.tainted_locals
        self.origin_params |= other.origin_params
        self.missed_async_flows |= other.missed_async_flows
        self.visited |= other.visited
        for ref, parent in other.prov.items():
            self.prov.setdefault(ref, parent)
        for name, amount in other.stats.items():
            self.stats[name] = self.stats.get(name, 0) + amount

    def __len__(self) -> int:
        return len(self.stmts)

    def __contains__(self, ref: StmtRef) -> bool:
        return ref in self.stmts


__all__ = ["SliceResult"]
