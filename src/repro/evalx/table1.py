"""Regenerate Table 1: signatures identified per app, per discovery method.

Open-source cells: Extractocol / manual fuzzing / source-code analysis
(the corpus ground truth).  Closed-source cells: Extractocol / manual
fuzzing / automatic fuzzing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus import app_keys
from .paperdata import PaperRow, row_for
from .runner import evaluate_app
from .traces import count_trace


@dataclass
class Cell:
    extractocol: int
    manual: int
    third: int  # source-code truth (open) or auto fuzzing (closed)

    def as_text(self) -> str:
        return f"{self.extractocol} / {self.manual} / {self.third}"


@dataclass
class Table1Row:
    key: str
    app: str
    kind: str
    protocol: str
    get: Cell
    post: Cell
    put: Cell
    delete: Cell
    query: Cell
    json: Cell
    xml: Cell
    pairs: int

    def paper(self) -> PaperRow:
        return row_for(self.key)


def _truth_cell(truth, method: str | None, measure) -> int:
    return truth.count(method, visible_to=measure)


def row_for_app(key: str) -> Table1Row:
    ev = evaluate_app(key)
    spec = ev.spec
    stats = ev.report.stats()
    manual = count_trace(ev.manual.trace)
    auto = count_trace(ev.auto.trace)

    def method_cell(method: str, static_count: int) -> Cell:
        manual_n = manual.by_method.get(method, 0)
        if spec.kind == "open":
            third = spec.truth.count(method)
        else:
            third = auto.by_method.get(method, 0)
        return Cell(static_count, manual_n, third)

    def body_cell(static_count: int, manual_n: int, auto_n: int,
                  truth_kind: str) -> Cell:
        if spec.kind == "open":
            third = sum(
                1
                for ep in spec.truth.endpoints
                if ep.request_body == truth_kind or (
                    truth_kind == "json" and (ep.request_body == "json"
                                              or ep.response_body == "json")
                ) or (truth_kind == "xml" and ep.response_body == "xml")
            )
            if truth_kind == "query":
                third = sum(
                    1 for ep in spec.truth.endpoints if ep.request_body == "query"
                )
        else:
            third = auto_n
        return Cell(static_count, manual_n, third)

    return Table1Row(
        key=key,
        app=spec.name,
        kind=spec.kind,
        protocol=spec.protocol,
        get=method_cell("GET", stats.get),
        post=method_cell("POST", stats.post),
        put=method_cell("PUT", stats.put),
        delete=method_cell("DELETE", stats.delete),
        query=body_cell(stats.query_string, manual.query, auto.query, "query"),
        json=body_cell(stats.json_body, manual.json, auto.json, "json"),
        xml=body_cell(stats.xml_body, manual.xml, auto.xml, "xml"),
        pairs=stats.pairs,
    )


def generate_table1(kind: str | None = None) -> list[Table1Row]:
    return [row_for_app(key) for key in app_keys(kind)]


def render_table1(rows: list[Table1Row] | None = None) -> str:
    rows = rows if rows is not None else generate_table1()
    header = (
        f"{'App':24s} {'Proto':8s} {'GET':>12s} {'POST':>12s} {'PUT':>10s} "
        f"{'DELETE':>10s} {'Query':>12s} {'JSON':>12s} {'XML':>10s} {'#Pair':>6s}"
    )
    lines = [header, "-" * len(header)]
    for row in sorted(rows, key=lambda r: (r.kind, r.app.lower())):
        lines.append(
            f"{row.app[:24]:24s} {row.protocol:8s} {row.get.as_text():>12s} "
            f"{row.post.as_text():>12s} {row.put.as_text():>10s} "
            f"{row.delete.as_text():>10s} {row.query.as_text():>12s} "
            f"{row.json.as_text():>12s} {row.xml.as_text():>10s} "
            f"{row.pairs:>6d}"
        )
    return "\n".join(lines)


def total_pairs(rows: list[Table1Row] | None = None) -> int:
    rows = rows if rows is not None else generate_table1()
    return sum(r.pairs for r in rows)


__all__ = ["Cell", "Table1Row", "generate_table1", "render_table1",
           "row_for_app", "total_pairs"]
