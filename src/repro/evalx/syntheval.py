"""Score a synthesized population against its generated ground truth.

The synthetic corpus's analogue of Table 1: for every app of a
``synth:<families>*<scale>[@<seed>]`` population, run the full evaluation
(static analysis + manual + automatic fuzzing) and compare each discovery
method's yield against the app's :class:`~repro.corpus.base.GroundTruth`;
for apps whose grid point carries a lineage mutation, additionally diff
v1 -> v2 and judge the verdict against the mutation's known drift class.
One row per family, exact-match column per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synth import parse_app_key, parse_population, synth_lineage
from .runner import evaluate_app


@dataclass
class SynthAppScore:
    """One synthesized app, each discovery method judged against truth."""

    key: str
    family: str
    static_expected: int
    static_found: int
    unidentified_expected: int
    unidentified_found: int
    manual_expected: int
    manual_found: int
    auto_expected: int
    auto_found: int
    drift_expected: str | None = None  # "breaking" | "clean" | None (no v2)
    drift_verdict: str | None = None

    @property
    def static_ok(self) -> bool:
        return (
            self.static_found == self.static_expected
            and self.unidentified_found == self.unidentified_expected
        )

    @property
    def manual_ok(self) -> bool:
        return self.manual_found == self.manual_expected

    @property
    def auto_ok(self) -> bool:
        return self.auto_found == self.auto_expected

    @property
    def drift_ok(self) -> bool | None:
        if self.drift_expected is None:
            return None
        got = "clean" if self.drift_verdict in ("identical", "compatible") \
            else "breaking"
        return got == self.drift_expected


@dataclass
class SynthFamilyScore:
    family: str
    apps: list[SynthAppScore] = field(default_factory=list)

    def _count(self, pred) -> int:
        return sum(1 for a in self.apps if pred(a))

    @property
    def static_ok(self) -> int:
        return self._count(lambda a: a.static_ok)

    @property
    def manual_ok(self) -> int:
        return self._count(lambda a: a.manual_ok)

    @property
    def auto_ok(self) -> int:
        return self._count(lambda a: a.auto_ok)

    @property
    def drift_pairs(self) -> int:
        return self._count(lambda a: a.drift_expected is not None)

    @property
    def drift_ok(self) -> int:
        return self._count(lambda a: a.drift_ok is True)

    @property
    def endpoints(self) -> int:
        return sum(a.static_expected + a.unidentified_expected
                   for a in self.apps)


def score_app(key: str, *, diff_lineage: bool = True) -> SynthAppScore:
    """Evaluate one synthesized app against its ground truth."""
    ev = evaluate_app(key)
    truth = ev.spec.truth
    family, _, _ = parse_app_key(key)
    score = SynthAppScore(
        key=key,
        family=family,
        static_expected=truth.count(visible_to="static"),
        static_found=len(ev.report.transactions),
        unidentified_expected=sum(
            1 for t in truth.endpoints if not t.static_visible
        ),
        unidentified_found=len(ev.report.unidentified),
        manual_expected=truth.count(visible_to="manual"),
        manual_found=len(ev.manual.trace),
        auto_expected=truth.count(visible_to="auto"),
        auto_found=len(ev.auto.trace),
    )
    if diff_lineage:
        versions = synth_lineage(key)
        if len(versions) > 1:
            from ..diff import diff_targets

            v2 = versions[-1]
            score.drift_expected = (
                "breaking" if v2.expect_breaking else "clean"
            )
            diff = diff_targets(f"{key}@v1", f"{key}@v{v2.version}")
            score.drift_verdict = diff.verdict
    return score


def score_population(
    spec: str, *, diff_lineage: bool = True
) -> list[SynthFamilyScore]:
    """Score every app of a population spec, grouped per family."""
    pop = parse_population(spec)
    by_family: dict[str, SynthFamilyScore] = {}
    for key in pop.keys():
        app = score_app(key, diff_lineage=diff_lineage)
        by_family.setdefault(
            app.family, SynthFamilyScore(family=app.family)
        ).apps.append(app)
    return list(by_family.values())


def render_synth_table(
    spec: str, *, diff_lineage: bool = True
) -> str:
    """One row per family: exact-match counts per discovery method."""
    scores = score_population(spec, diff_lineage=diff_lineage)
    header = (
        f"{'family':12s} {'apps':>5s} {'endpoints':>9s} {'static':>9s} "
        f"{'manual':>9s} {'auto':>9s} {'drift':>9s}"
    )
    lines = [
        f"Synthesized-corpus evaluation: {spec}",
        "(each cell: apps whose discovered set exactly matches ground truth)",
        "",
        header,
        "-" * len(header),
    ]
    tot_apps = tot_eps = 0
    tot = {"static": 0, "manual": 0, "auto": 0, "drift": 0, "pairs": 0}
    for fam in scores:
        n = len(fam.apps)
        tot_apps += n
        tot_eps += fam.endpoints
        tot["static"] += fam.static_ok
        tot["manual"] += fam.manual_ok
        tot["auto"] += fam.auto_ok
        tot["drift"] += fam.drift_ok
        tot["pairs"] += fam.drift_pairs
        drift = (
            f"{fam.drift_ok}/{fam.drift_pairs}" if fam.drift_pairs else "-"
        )
        static_c = f"{fam.static_ok}/{n}"
        manual_c = f"{fam.manual_ok}/{n}"
        auto_c = f"{fam.auto_ok}/{n}"
        lines.append(
            f"{fam.family:12s} {n:>5d} {fam.endpoints:>9d} "
            f"{static_c:>9s} {manual_c:>9s} {auto_c:>9s} {drift:>9s}"
        )
    lines.append("-" * len(header))
    drift_total = f"{tot['drift']}/{tot['pairs']}" if tot["pairs"] else "-"
    static_t = f"{tot['static']}/{tot_apps}"
    manual_t = f"{tot['manual']}/{tot_apps}"
    auto_t = f"{tot['auto']}/{tot_apps}"
    lines.append(
        f"{'total':12s} {tot_apps:>5d} {tot_eps:>9d} "
        f"{static_t:>9s} {manual_t:>9s} {auto_t:>9s} {drift_total:>9s}"
    )
    return "\n".join(lines)


__all__ = [
    "SynthAppScore",
    "SynthFamilyScore",
    "render_synth_table",
    "score_app",
    "score_population",
]
