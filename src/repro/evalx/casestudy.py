"""Regenerate the case studies: Tables 3-6, Figures 1, 3 and 8."""

from __future__ import annotations

from dataclasses import dataclass

from ..deps.interdep import render_graph
from ..signature.matcher import signature_keywords, traffic_keywords
from .runner import evaluate_app


# ------------------------------------------------------------------- Table 3
def table3() -> str:
    """radio reddit: reconstructed transactions + dependency graph."""
    ev = evaluate_app("radioreddit")
    lines = ["radio reddit — reconstructed HTTP transactions (Table 3)"]
    for txn in sorted(ev.report.transactions, key=lambda t: t.txn_id):
        lines.append(f"#{txn.txn_id} {txn.describe()}")
    lines.append("")
    lines.append("dependency graph:")
    lines.append(render_graph(ev.report.transactions))
    return "\n".join(lines)


# ------------------------------------------------------------------- Table 4
@dataclass
class Table4Row:
    txn_id: int
    request: str
    derivation: str  # "S" static / "D" dynamically derived
    response: str
    consumers: tuple[str, ...]


def table4() -> list[Table4Row]:
    ev = evaluate_app("ted")
    rows = []
    for txn in sorted(ev.report.transactions, key=lambda t: t.txn_id):
        rows.append(
            Table4Row(
                txn_id=txn.txn_id,
                request=f"{txn.request.method} {txn.request.uri_regex}",
                derivation="D" if txn.request.is_dynamic else "S",
                response=txn.response.kind,
                consumers=tuple(sorted(txn.response.consumers)),
            )
        )
    return rows


def render_table4() -> str:
    lines = ["TED — transactions and dependency graph (Table 4)"]
    for row in table4():
        cons = f" => {','.join(row.consumers)}" if row.consumers else ""
        lines.append(
            f"#{row.txn_id:2d} ({row.derivation}) {row.request[:80]} "
            f"-> {row.response}{cons}"
        )
    ev = evaluate_app("ted")
    lines.append("")
    lines.append(render_graph(ev.report.transactions))
    return "\n".join(lines)


# ------------------------------------------------------------------- Table 5
_KAYAK_CATEGORIES = (
    ("Travel Planner", "GET", "/trips/v2"),
    ("Authentication", "POST", "/k/authajax"),
    ("Facebook Auth", "POST", "/k/run/fbauth"),
    ("Flight", "GET", "/api/search/V8/flight"),
    ("Hotel", "GET", "/api/search/V8/hotel"),
    ("Car", "GET", "/api/search/V8/car"),
    ("Mobile Specific", "GET", "/h/mobileapis"),
    ("Advertising", "GET", "/s/mobileads"),
    ("Etc.", "POST", "/k"),
)


@dataclass
class Table5Row:
    category: str
    method: str
    prefix: str
    apis: int
    response_json: bool


def table5() -> list[Table5Row]:
    ev = evaluate_app("kayak")
    rows = []
    remaining = list(ev.report.transactions)
    for category, method, prefix in _KAYAK_CATEGORIES:
        matched = [
            t
            for t in remaining
            if t.request.method == method
            and prefix in t.request.uri_regex.replace("\\", "")
        ]
        for t in matched:
            remaining.remove(t)
        rows.append(
            Table5Row(
                category=category,
                method=method,
                prefix=f"https://www.kayak.com{prefix}",
                apis=len(matched),
                response_json=any(t.response.kind == "json" for t in matched),
            )
        )
    return rows


def render_table5() -> str:
    lines = ["KAYAK API summary (Table 5)",
             f"{'Category':16s} {'Method':6s} {'URI Prefix':44s} {'#APIs':>5s} {'Resp':>5s}"]
    for row in table5():
        lines.append(
            f"{row.category:16s} {row.method:6s} {row.prefix:44s} "
            f"{row.apis:>5d} {'JSON' if row.response_json else '-':>5s}"
        )
    lines.append(f"{'Total':16s} {'':6s} {'':44s} {sum(r.apis for r in table5()):>5d}")
    return "\n".join(lines)


# ------------------------------------------------------------------- Table 6
def table6() -> dict[str, str]:
    """The selected Kayak request signatures (sub URI -> query/body)."""
    ev = evaluate_app("kayak")
    out: dict[str, str] = {}
    for txn in ev.report.transactions:
        uri = txn.request.uri_regex.replace("\\", "")
        if uri.endswith("/k/authajax$") and txn.request.method == "POST":
            out["/k/authajax"] = txn.request.body_regex or ""
        elif "flight/start" in uri:
            out["/api/search/V8/flight/start"] = uri
        elif "flight/poll" in uri:
            out["/api/search/V8/flight/poll"] = uri
    return out


def render_table6() -> str:
    lines = ["KAYAK selected request signatures (Table 6)"]
    for sub, sig in table6().items():
        lines.append(f"  {sub}")
        lines.append(f"    {sig[:110]}")
    return "\n".join(lines)


# ------------------------------------------------------------------ Figure 8
@dataclass
class Figure8Result:
    total_traffic_keywords: int
    matched_keywords: int
    unmatched: tuple[str, ...]


def figure8() -> Figure8Result:
    """RRD transaction #2: constant keywords of the status.json response
    covered by the signature (the paper: 16 of 18)."""
    ev = evaluate_app("radioreddit")
    status = next(
        t
        for t in ev.report.transactions
        if "status" in t.request.uri_regex
    )
    captured = next(
        c for c in ev.manual.trace if "status.json" in c.request.url
    )
    _, traffic_resp = traffic_keywords(
        ("GET", captured.request.url, None), captured.response.body
    )
    _, sig_resp = signature_keywords(status)
    matched = traffic_resp & sig_resp
    return Figure8Result(
        total_traffic_keywords=len(traffic_resp),
        matched_keywords=len(matched),
        unmatched=tuple(sorted(traffic_resp - sig_resp)),
    )


# ------------------------------------------------------------------ Figure 1
def figure1_chain() -> list[str]:
    """TED ad prefetch chain: android_ad.json → ad query → ad video →
    media player (the dependency knowledge a prefetcher needs)."""
    ev = evaluate_app("ted")
    txns = {t.txn_id: t for t in ev.report.transactions}
    chain: list[str] = []
    # find the android_ad.json transaction and walk dependents
    ad_meta = next(
        t for t in ev.report.transactions if "android_ad" in t.request.uri_regex
    )
    chain.append(f"#{ad_meta.txn_id} {ad_meta.request.method} android_ad.json")
    frontier = [ad_meta.txn_id]
    while frontier:
        nxt = [
            t
            for t in ev.report.transactions
            if any(d.src_txn in frontier for d in t.depends_on)
        ]
        frontier = [t.txn_id for t in nxt if f"#{t.txn_id}" not in " ".join(chain)]
        for t in nxt:
            label = f"#{t.txn_id} {t.request.method} {t.request.uri_regex}"
            if t.response.consumers:
                label += f" => {','.join(sorted(t.response.consumers))}"
            if label not in chain:
                chain.append(label)
    return chain


# ------------------------------------------------------------------ Figure 3
@dataclass
class Figure3Result:
    slice_fraction: float
    uri_patterns: int
    search_regex_matches: bool


def figure3() -> Figure3Result:
    """Diode: slices are a small fraction of the code; the Figure-3 method
    yields the multi-pattern URI disjunction including the /search/ form."""
    import re

    ev = evaluate_app("diode")
    listing = next(
        t
        for t in ev.report.transactions
        if "doInBackground" in t.site.method_id
    )
    from ..signature.lang import Alt

    alts = [t for t in listing.request.uri.walk() if isinstance(t, Alt)]
    patterns = max((len(a.options) for a in alts), default=1)
    rx = re.compile(listing.request.uri_regex)
    ok = bool(rx.match("http://www.reddit.com/search/.json?q=cats&sort=top"))
    return Figure3Result(
        slice_fraction=ev.report.slice_fraction,
        uri_patterns=patterns,
        search_regex_matches=ok,
    )


__all__ = [
    "Figure3Result",
    "Figure8Result",
    "Table4Row",
    "Table5Row",
    "figure1_chain",
    "figure3",
    "figure8",
    "render_table4",
    "render_table5",
    "render_table6",
    "table3",
    "table4",
    "table5",
    "table6",
]
