"""Summarise traffic traces into the units Table 1 / Figures 6-7 count."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from ..runtime.httpstack import TrafficTrace
from ..signature.matcher import _body_keywords, _json_keys  # shared helpers


@dataclass
class EndpointObservation:
    method: str
    host: str
    path: str
    has_form_body: bool = False
    has_json: bool = False
    has_xml: bool = False
    has_processed_response: bool = False
    request_body_shape: str = ""
    response_body_shape: str = ""
    request_keywords: set[str] = field(default_factory=set)
    response_keywords: set[str] = field(default_factory=set)


def summarize_trace(trace: TrafficTrace) -> dict[tuple, EndpointObservation]:
    """Collapse a trace into unique endpoints (method, host, path)."""
    out: dict[tuple, EndpointObservation] = {}
    for captured in trace:
        req, resp = captured.request, captured.response
        key = (req.method, req.host, req.path)
        obs = out.get(key)
        if obs is None:
            obs = EndpointObservation(req.method, req.host, req.path)
            out[key] = obs
        # request side
        for k, _ in parse_qsl(urlsplit(req.url).query, keep_blank_values=True):
            obs.request_keywords.add(k)
        body = (req.body or "").strip()
        if body:
            if body.startswith(("{", "[")):
                obs.has_json = True
                obs.request_body_shape = _shape(body)
                obs.request_keywords |= _body_keywords(body)
            elif body.startswith("<"):
                obs.has_xml = True
            else:
                obs.has_form_body = True
                obs.request_body_shape = "&".join(
                    sorted(k for k, _ in parse_qsl(body, keep_blank_values=True))
                )
                obs.request_keywords |= _body_keywords(body)
        # response side
        ctype = resp.content_type
        if resp.status < 400 and resp.body:
            if "json" in ctype:
                obs.has_json = True
                obs.has_processed_response = True
                obs.response_body_shape = _shape(resp.body)
                obs.response_keywords |= _body_keywords(resp.body)
            elif "xml" in ctype:
                obs.has_xml = True
                obs.has_processed_response = True
                obs.response_body_shape = "xml:" + ",".join(
                    sorted(_body_keywords(resp.body))
                )
                obs.response_keywords |= _body_keywords(resp.body)
            elif "text" in ctype:
                obs.has_processed_response = True
                obs.response_body_shape = "text"
    return out


def _shape(body: str) -> str:
    try:
        return ",".join(sorted(_json_keys(json.loads(body))))
    except ValueError:
        return body[:40]


@dataclass
class TraceCounts:
    by_method: dict[str, int]
    query: int
    json: int
    xml: int
    pairs: int
    unique_uris: int
    unique_request_bodies: int
    unique_response_bodies: int
    request_keywords: set[str]
    response_keywords: set[str]


def count_trace(trace: TrafficTrace) -> TraceCounts:
    endpoints = summarize_trace(trace)
    by_method: dict[str, int] = {}
    query = json_n = xml = pairs = 0
    req_bodies: set[str] = set()
    resp_bodies: set[str] = set()
    req_kws: set[str] = set()
    resp_kws: set[str] = set()
    for obs in endpoints.values():
        by_method[obs.method] = by_method.get(obs.method, 0) + 1
        if obs.has_form_body:
            query += 1
        if obs.has_json:
            json_n += 1
        if obs.has_xml:
            xml += 1
        if obs.has_processed_response:
            pairs += 1
            if obs.response_body_shape:
                resp_bodies.add((obs.path, obs.response_body_shape))
        if obs.request_body_shape:
            req_bodies.add((obs.path, obs.request_body_shape))
        req_kws |= obs.request_keywords
        resp_kws |= obs.response_keywords
    return TraceCounts(
        by_method=by_method,
        query=query,
        json=json_n,
        xml=xml,
        pairs=pairs,
        unique_uris=len(endpoints),
        unique_request_bodies=len(req_bodies),
        unique_response_bodies=len(resp_bodies),
        request_keywords=req_kws,
        response_keywords=resp_kws,
    )


__all__ = ["EndpointObservation", "TraceCounts", "count_trace", "summarize_trace"]
