"""Protocol-drift evaluation over the generated version lineages.

For every consecutive version pair of every lineage family
(:mod:`repro.corpus.lineage`), run the protocol diff and compare its
verdict — and, for breaking drifts, its breaking-change *kinds* — against
the lineage's ground truth.  The resulting table is the diff subsystem's
analogue of Table 1: does evolution analysis recover the known drift,
nothing more and nothing less?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.extractocol import Extractocol
from ..corpus.lineage import LineageVersion, lineage_keys, lineages
from ..diff import ProtocolDiff, diff_reports


@dataclass
class DriftRow:
    """One consecutive version pair, diffed and judged."""

    family: str
    old_label: str
    new_label: str
    description: str
    diff: ProtocolDiff
    expected_breaking: bool
    expected_kinds: tuple[str, ...]

    @property
    def breaking_kinds(self) -> tuple[str, ...]:
        return tuple(sorted({c.kind for c in self.diff.breaking_changes()}))

    @property
    def correct(self) -> bool:
        if self.diff.breaking != self.expected_breaking:
            return False
        if self.expected_kinds:
            return self.breaking_kinds == tuple(sorted(self.expected_kinds))
        return True


def _analyze(version: LineageVersion):
    built = version.materialize()
    return Extractocol(built.config).analyze(built.apk), built


def drift_rows(corpus: str | None = None) -> list[DriftRow]:
    """Diff every consecutive version pair of every lineage family.

    ``corpus`` optionally names a synthesized population spec
    (``synth:<families>*<scale>[@<seed>]``, e.g. via ``$REPRO_CORPUS``);
    its apps with known-drift lineages are appended to the hand-written
    families."""
    families: list[tuple[str, list[LineageVersion]]] = [
        (family, lineages()[family]) for family in lineage_keys()
    ]
    if corpus:
        from ..synth import parse_population, synth_lineage

        for key in parse_population(corpus).keys():
            versions = synth_lineage(key)
            if len(versions) > 1:
                families.append((key, versions))
    rows: list[DriftRow] = []
    for family, versions in families:
        analyzed = [(_analyze(v), v) for v in versions]
        for ((old_report, old_built), _), ((new_report, new_built), new_v) in zip(
            analyzed, analyzed[1:]
        ):
            from ..diff.engine import _relative_renames

            renames = _relative_renames(
                old_built.renames_from_base, new_built.renames_from_base
            )
            diff = diff_reports(old_report, new_report, renames=renames)
            rows.append(DriftRow(
                family=family,
                old_label=f"{family}@v{new_v.version - 1}",
                new_label=new_v.label,
                description=new_v.description,
                diff=diff,
                expected_breaking=new_v.expect_breaking,
                expected_kinds=new_v.expected_breaking_kinds,
            ))
    return rows


def render_drift_table(corpus: str | None = None) -> str:
    """The drift table: one row per consecutive lineage version pair."""
    rows = drift_rows(corpus)
    header = (
        f"{'pair':26s} {'verdict':11s} {'expect':9s} "
        f"{'+':>3s} {'-':>3s} {'~':>3s} {'ok':3s} breaking kinds"
    )
    lines = [
        "Protocol drift over generated version lineages",
        "(+/-/~ = transactions added / removed / changed)",
        "",
        header,
        "-" * len(header),
    ]
    correct = 0
    for row in rows:
        diff = row.diff
        changed = sum(d.changed for d in diff.matched)
        expect = "breaking" if row.expected_breaking else "clean"
        ok = "yes" if row.correct else "NO"
        correct += row.correct
        kinds = ", ".join(row.breaking_kinds) or "-"
        pair = f"{row.old_label} -> {row.new_label}"
        lines.append(
            f"{pair:26s} {diff.verdict:11s} {expect:9s} "
            f"{len(diff.added):>3d} {len(diff.removed):>3d} {changed:>3d} "
            f"{ok:3s} {kinds}"
        )
    lines.append("-" * len(header))
    lines.append(f"{correct}/{len(rows)} drift verdicts match ground truth")
    return "\n".join(lines)


__all__ = ["DriftRow", "drift_rows", "render_drift_table"]
