"""Regenerate Figures 6 and 7: aggregate unique-signature and
constant-keyword totals per discovery method."""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus import app_keys
from .runner import evaluate_app
from .traces import count_trace


@dataclass
class Figure6Series:
    """(response bodies, request bodies/query strings, URIs) — the bar
    order of the paper's Figure 6."""

    response_bodies: int
    request_bodies: int
    uris: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.response_bodies, self.request_bodies, self.uris)


@dataclass
class Figure6:
    kind: str
    extractocol: Figure6Series
    manual: Figure6Series
    third: Figure6Series  # source truth (open) / auto fuzzing (closed)
    third_label: str


def figure6(kind: str) -> Figure6:
    e_uri = e_req = e_resp = 0
    m_uri = m_req = m_resp = 0
    t_uri = t_req = t_resp = 0
    for key in app_keys(kind):
        ev = evaluate_app(key)
        report = ev.report
        e_uri += len(report.unique_uri_signatures())
        e_req += len(report.unique_request_body_signatures())
        e_resp += len(report.unique_response_body_signatures())
        manual = count_trace(ev.manual.trace)
        m_uri += manual.unique_uris
        m_req += manual.unique_request_bodies
        m_resp += manual.unique_response_bodies
        if kind == "open":
            truth = ev.spec.truth
            t_uri += truth.count()
            t_req += sum(1 for ep in truth.endpoints if ep.request_body)
            t_resp += sum(1 for ep in truth.endpoints if ep.response_body)
        else:
            auto = count_trace(ev.auto.trace)
            t_uri += auto.unique_uris
            t_req += auto.unique_request_bodies
            t_resp += auto.unique_response_bodies
    return Figure6(
        kind=kind,
        extractocol=Figure6Series(e_resp, e_req, e_uri),
        manual=Figure6Series(m_resp, m_req, m_uri),
        third=Figure6Series(t_resp, t_req, t_uri),
        third_label="source" if kind == "open" else "auto",
    )


@dataclass
class Figure7Series:
    """(response keywords, request keywords)."""

    response_keywords: int
    request_keywords: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.response_keywords, self.request_keywords)


@dataclass
class Figure7:
    kind: str
    extractocol: Figure7Series
    manual: Figure7Series
    third: Figure7Series
    third_label: str


def figure7(kind: str) -> Figure7:
    e_req = e_resp = m_req = m_resp = t_req = t_resp = 0
    for key in app_keys(kind):
        ev = evaluate_app(key)
        req_kws: set[str] = set()
        resp_kws: set[str] = set()
        for txn in ev.report.transactions:
            req_kws |= set(txn.request.keywords)
            resp_kws |= set(txn.response.keywords)
        e_req += len(req_kws)
        e_resp += len(resp_kws)
        manual = count_trace(ev.manual.trace)
        m_req += len(manual.request_keywords)
        m_resp += len(manual.response_keywords)
        if kind == "open":
            # source-code truth ≈ all keywords the program mentions; for the
            # corpus this equals the heuristic-enabled analysis output.
            from repro import AnalysisConfig, Extractocol

            full = Extractocol(
                AnalysisConfig(async_heuristic=True,
                               scope_prefixes=ev.spec.scope_prefixes)
            ).analyze(ev.spec.build_apk())
            s_req: set[str] = set()
            s_resp: set[str] = set()
            for txn in full.transactions:
                s_req |= set(txn.request.keywords)
                s_resp |= set(txn.response.keywords)
            t_req += len(s_req)
            t_resp += len(s_resp)
        else:
            auto = count_trace(ev.auto.trace)
            t_req += len(auto.request_keywords)
            t_resp += len(auto.response_keywords)
    return Figure7(
        kind=kind,
        extractocol=Figure7Series(e_resp, e_req),
        manual=Figure7Series(m_resp, m_req),
        third=Figure7Series(t_resp, t_req),
        third_label="source" if kind == "open" else "auto",
    )


def render_figures(kind: str) -> str:
    f6 = figure6(kind)
    f7 = figure7(kind)
    lines = [
        f"Figure 6 ({kind}): unique signatures (resp / req / URI)",
        f"  extractocol : {f6.extractocol.as_tuple()}",
        f"  manual fuzz : {f6.manual.as_tuple()}",
        f"  {f6.third_label:11s} : {f6.third.as_tuple()}",
        f"Figure 7 ({kind}): constant keywords (resp / req)",
        f"  extractocol : {f7.extractocol.as_tuple()}",
        f"  manual fuzz : {f7.manual.as_tuple()}",
        f"  {f7.third_label:11s} : {f7.third.as_tuple()}",
    ]
    return "\n".join(lines)


__all__ = ["Figure6", "Figure6Series", "Figure7", "Figure7Series",
           "figure6", "figure7", "render_figures"]
