"""Regenerate Table 2: matched byte-count percentages (Rk / Rv / Rn) on
actual traffic, for request bodies/query strings and response bodies."""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus import app_keys
from ..signature.matcher import (
    ByteAccount,
    account_request,
    account_response,
    transaction_matches,
)
from .runner import evaluate_app


@dataclass
class Table2Row:
    kind: str
    request: tuple[float, float, float]
    response: tuple[float, float, float]

    def as_text(self) -> str:
        rk, rv, rn = (round(100 * x) for x in self.request)
        sk, sv, sn = (round(100 * x) for x in self.response)
        return (
            f"{self.kind:8s}  request {rk}/{rv}/{rn}%   "
            f"response {sk}/{sv}/{sn}%"
        )


def _account_app(key: str) -> tuple[ByteAccount, ByteAccount]:
    ev = evaluate_app(key)
    req_acct = ByteAccount()
    resp_acct = ByteAccount()
    # wildcard-only signatures (intent-fed endpoints) still match their
    # traffic — their bytes land in Rn, "covered by the wildcard part of
    # our regex signature" (§5.1)
    for captured in ev.manual.trace:
        match = next(
            (
                t
                for t in ev.report.transactions + ev.report.unidentified
                if transaction_matches(
                    t, captured.request.method, captured.request.url,
                    captured.request.body,
                )
            ),
            None,
        )
        if match is None:
            continue
        req_acct.add(
            account_request(match, captured.request.url, captured.request.body)
        )
        if "json" in captured.response.content_type:
            resp_acct.add(account_response(match, captured.response.body))
    return req_acct, resp_acct


def table2(kind: str) -> Table2Row:
    req_total = ByteAccount()
    resp_total = ByteAccount()
    for key in app_keys(kind):
        req, resp = _account_app(key)
        req_total.add(req)
        resp_total.add(resp)
    return Table2Row(
        kind=kind,
        request=req_total.fractions(),
        response=resp_total.fractions(),
    )


def render_table2() -> str:
    return "\n".join(table2(kind).as_text() for kind in ("open", "closed"))


__all__ = ["Table2Row", "render_table2", "table2"]
