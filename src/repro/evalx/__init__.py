"""Evaluation harness: regenerates every table and figure of paper §5.

(The package is named ``evalx`` to avoid shadowing the builtin ``eval``.)
"""

from .casestudy import (
    figure1_chain,
    figure3,
    figure8,
    render_table4,
    render_table5,
    render_table6,
    table3,
    table4,
    table5,
    table6,
)
from .drift import DriftRow, drift_rows, render_drift_table
from .figures import figure6, figure7, render_figures
from .paperdata import (FIGURE6, FIGURE7, PAPER_TOTAL_PAIRS, TABLE1,
                        TABLE2, TIMING, row_for)
from .runner import (
    AppEvaluation,
    clear_cache,
    evaluate_app,
    evaluate_corpus,
    render_phase_table,
)
from .syntheval import (
    SynthAppScore,
    SynthFamilyScore,
    render_synth_table,
    score_app,
    score_population,
)
from .table1 import generate_table1, render_table1, row_for_app, total_pairs
from .table2 import render_table2, table2
from .traces import count_trace, summarize_trace

__all__ = [name for name in dir() if not name.startswith("_")]
