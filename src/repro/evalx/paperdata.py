"""The paper's published numbers, transcribed for paper-vs-measured reports.

Table 1 cells are (Extractocol, manual fuzzing, third) where *third* is
source-code analysis for open-source apps and automatic fuzzing (PUMA) for
closed-source apps.  Figure values were extracted from the paper text; the
closed-source Figure 6 series are marked approximate (the source rendering
interleaves the numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperRow:
    app: str
    key: str
    kind: str
    protocol: str
    get: tuple[int, int, int] = (0, 0, 0)
    post: tuple[int, int, int] = (0, 0, 0)
    put: tuple[int, int, int] = (0, 0, 0)
    delete: tuple[int, int, int] = (0, 0, 0)
    query: tuple[int, int, int] = (0, 0, 0)
    json: tuple[int, int, int] = (0, 0, 0)
    xml: tuple[int, int, int] = (0, 0, 0)
    pairs: int = 0


TABLE1: tuple[PaperRow, ...] = (
    # ---- open source: (Extractocol / manual fuzzing / source code) -------
    PaperRow("Adblock Plus", "adblock", "open", "HTTPS",
             get=(2, 2, 2), post=(1, 1, 1), query=(1, 1, 1), xml=(1, 1, 1),
             pairs=1),
    PaperRow("AnarXiv", "anarxiv", "open", "HTTP",
             get=(2, 2, 2), xml=(2, 2, 2), pairs=2),
    PaperRow("blippex", "blippex", "open", "HTTPS",
             get=(1, 1, 1), json=(1, 1, 1), pairs=1),
    PaperRow("Diaspora WebClient", "diaspora", "open", "HTTP",
             get=(1, 1, 1), json=(1, 1, 1), pairs=1),
    PaperRow("Diode", "diode", "open", "HTTP(S)",
             get=(24, 24, 24), json=(2, 2, 2), pairs=5),
    PaperRow("iFixIt", "ifixit", "open", "HTTP",
             get=(15, 15, 15), post=(7, 7, 7), query=(3, 3, 3),
             json=(14, 14, 14), pairs=14),
    PaperRow("Lightning", "lightning", "open", "HTTP(S)",
             get=(2, 2, 2), xml=(1, 1, 1), pairs=1),
    PaperRow("qBittorrent", "qbittorrent", "open", "HTTP",
             get=(3, 3, 2), post=(13, 13, 2), query=(13, 13, 13),
             json=(3, 3, 3), pairs=3),
    PaperRow("radio reddit", "radioreddit", "open", "HTTP(S)",
             get=(3, 3, 3), post=(3, 3, 3), query=(3, 3, 3), json=(4, 4, 4),
             pairs=4),
    PaperRow("Reddinator", "reddinator", "open", "HTTP(S)",
             get=(3, 3, 3), post=(3, 3, 3), json=(6, 6, 6), pairs=6),
    PaperRow("Twister", "twister", "open", "HTTP",
             post=(11, 11, 11), query=(11, 11, 11), json=(8, 8, 8), pairs=8),
    PaperRow("TZM", "tzm", "open", "HTTPS",
             get=(2, 2, 2), json=(1, 1, 1), pairs=1),
    PaperRow("Wallabag", "wallabag", "open", "HTTP",
             get=(1, 1, 1), xml=(1, 1, 1), pairs=1),
    PaperRow("Weather Notification", "weather", "open", "HTTP",
             get=(2, 2, 2), xml=(2, 2, 2), pairs=2),
    # ---- closed source: (Extractocol / manual fuzzing / auto fuzzing) -----
    PaperRow("5miles", "fivemiles", "closed", "HTTPS",
             get=(24, 25, 0), post=(51, 12, 0), query=(16, 6, 0),
             json=(16, 8, 0), pairs=71),
    PaperRow("AC App for Android", "acapp", "closed", "HTTP(S)",
             get=(9, 9, 7), post=(15, 15, 5), query=(15, 15, 15),
             json=(23, 23, 23), pairs=23),
    PaperRow("AOL: Mail, News & Video", "aol", "closed", "HTTP",
             get=(9, 9, 6), json=(9, 9, 9), pairs=9),
    PaperRow("AccuWeather", "accuweather", "closed", "HTTP",
             get=(15, 15, 0), post=(3, 3, 0), query=(3, 3, 3),
             json=(16, 16, 16), pairs=16),
    PaperRow("Buzzfeed", "buzzfeed", "closed", "HTTP(S)",
             get=(16, 5, 5), post=(12, 5, 1), query=(28, 5, 5),
             json=(6, 5, 5), pairs=27),
    PaperRow("Flipboard", "flipboard", "closed", "HTTPS",
             get=(23, 24, 0), post=(41, 13, 0), query=(28, 13, 0),
             json=(8, 7, 0), pairs=63),
    PaperRow("GEEK", "geek", "closed", "HTTPS",
             get=(0, 1, 0), post=(97, 48, 18), query=(41, 48, 18),
             json=(11, 27, 18), pairs=97),
    PaperRow("KAYAK", "kayak", "closed", "HTTPS",
             get=(39, 39, 15), post=(7, 7, 5), query=(7, 7, 7),
             json=(6, 6, 6), pairs=6),
    PaperRow("Letgo", "letgo", "closed", "HTTPS",
             get=(38, 32, 10), post=(10, 14, 2), put=(2, 2, 0),
             delete=(3, 0, 0), query=(20, 14, 3), json=(18, 13, 6),
             pairs=40),
    PaperRow("LinkedIn", "linkedin", "closed", "HTTPS",
             get=(38, 42, 16), post=(49, 17, 8), put=(0, 3, 0),
             query=(46, 17, 14), json=(47, 21, 14), pairs=85),
    PaperRow("Lucktastic", "lucktastic", "closed", "HTTPS",
             get=(16, 2, 0), post=(9, 15, 0), put=(2, 0, 0),
             delete=(4, 0, 0), query=(5, 15, 0), json=(19, 14, 0),
             pairs=31),
    PaperRow("MusicDownloader", "musicdownloader", "closed", "HTTPS",
             get=(3, 10, 0), post=(0, 1, 0), query=(0, 1, 0),
             json=(4, 7, 0), pairs=2),
    PaperRow("Offerup", "offerup", "closed", "HTTPS",
             get=(33, 20, 0), post=(23, 21, 0), put=(8, 1, 0),
             delete=(3, 0, 0), query=(12, 21, 0), json=(25, 16, 0),
             pairs=63),
    PaperRow("Pandora Radio", "pandora", "closed", "HTTP(S)",
             get=(7, 0, 0), post=(53, 20, 2), query=(53, 20, 2),
             json=(26, 16, 2), pairs=60),
    PaperRow("Pinterest", "pinterest", "closed", "HTTPS",
             get=(60, 62, 26), post=(36, 19, 16), put=(32, 8, 3),
             delete=(20, 10, 2), query=(88, 19, 36), json=(236, 58, 46),
             pairs=148),
    PaperRow("TED", "ted", "closed", "HTTP(S)",
             get=(16, 16, 10), post=(2, 2, 1), query=(2, 2, 2),
             json=(10, 10, 10), pairs=10),
    PaperRow("Tophatter", "tophatter", "closed", "HTTPS",
             get=(33, 24, 0), post=(32, 14, 0), put=(1, 0, 0),
             delete=(4, 1, 0), query=(18, 14, 0), json=(32, 11, 0),
             pairs=62),
    PaperRow("Tumblr", "tumblr", "closed", "HTTPS",
             get=(12, 13, 15), post=(8, 5, 5), delete=(1, 1, 0),
             query=(5, 5, 15), json=(14, 2, 14), pairs=20),
    PaperRow("WatchESPN", "watchespn", "closed", "HTTP",
             get=(33, 33, 17), json=(32, 32, 32), pairs=32),
    PaperRow("Wish Local", "wishlocal", "closed", "HTTPS",
             get=(0, 1, 0), post=(106, 48, 21), query=(15, 15, 21),
             json=(28, 13, 21), pairs=106),
)

PAPER_TOTAL_PAIRS = 971  # "it identified 971 HTTP (request URI-response body) pairs"

#: Figure 6 — unique signature totals (response body, request body/query
#: string, URI), per discovery method.
FIGURE6 = {
    "open": {
        "extractocol": (48, 92, 98),
        "manual": (48, 91, 95),
        "source": (48, 92, 98),
    },
    # approximate — see module docstring
    "closed": {
        "auto": (222, 141, 216),
        "manual": (314, 240, 732),
        "extractocol": (586, 402, 1058),
    },
}

#: Figure 7 — constant-keyword totals (response body, request body/query
#: string), per discovery method.
FIGURE7 = {
    "open": {
        "extractocol": (372, 144),
        "manual": (616, 145),
        "source": (372, 145),
    },
    "closed": {
        "auto": (2912, 505),
        "manual": (13554, 3507),
        "extractocol": (14120, 7793),
    },
}

#: Table 2 — matched byte count %: (Rk, Rv, Rn) per category.
TABLE2 = {
    ("open", "request"): (0.47, 0.52, 0.01),
    ("open", "response"): (0.07, 0.48, 0.45),
    ("closed", "request"): (0.48, 0.31, 0.21),
    ("closed", "response"): (0.16, 0.35, 0.49),
}

#: §5.1 analysis-time anchors (wall-clock, minutes).
TIMING = {"open_avg_minutes": 4, "closed_min_minutes": 11,
          "closed_max_minutes": 180}


def row_for(key: str) -> PaperRow:
    for row in TABLE1:
        if row.key == key:
            return row
    raise KeyError(key)


__all__ = ["FIGURE6", "FIGURE7", "PAPER_TOTAL_PAIRS", "PaperRow", "TABLE1",
           "TABLE2", "TIMING", "row_for"]
