"""Per-app evaluation runner: one place that runs Extractocol, manual and
automatic fuzzing on a corpus app and caches the results for the tables."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.config import AnalysisConfig
from ..core.extractocol import Extractocol
from ..core.report import AnalysisReport
from ..corpus import get_spec
from ..corpus.base import AppSpec
from ..runtime.fuzzing import AutoUiFuzzer, FuzzResult, ManualUiFuzzer


@dataclass
class AppEvaluation:
    spec: AppSpec
    report: AnalysisReport
    manual: FuzzResult
    auto: FuzzResult

    @property
    def key(self) -> str:
        return self.spec.key


def _config_for(spec: AppSpec) -> AnalysisConfig:
    """The paper's §5.1 setup: async heuristic off for open-source apps,
    on for closed-source; Kayak scoped to com.kayak."""
    return AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
    )


@lru_cache(maxsize=None)
def evaluate_app(key: str) -> AppEvaluation:
    spec = get_spec(key)
    report = Extractocol(_config_for(spec)).analyze(spec.build_apk())
    manual = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    auto = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    return AppEvaluation(spec=spec, report=report, manual=manual, auto=auto)


def clear_cache() -> None:
    evaluate_app.cache_clear()


__all__ = ["AppEvaluation", "clear_cache", "evaluate_app"]
