"""Per-app evaluation runner: one place that runs Extractocol, manual and
automatic fuzzing on a corpus app and caches the results for the tables."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from ..core.config import AnalysisConfig
from ..core.extractocol import Extractocol
from ..core.report import AnalysisReport
from ..corpus import app_keys, get_spec
from ..corpus.base import AppSpec
from ..perf.parallel import ordered_map
from ..runtime.fuzzing import AutoUiFuzzer, FuzzResult, ManualUiFuzzer


@dataclass
class AppEvaluation:
    spec: AppSpec
    report: AnalysisReport
    manual: FuzzResult
    auto: FuzzResult

    @property
    def key(self) -> str:
        return self.spec.key


def _config_for(spec: AppSpec, workers: int = 1) -> AnalysisConfig:
    """The paper's §5.1 setup: async heuristic off for open-source apps,
    on for closed-source; Kayak scoped to com.kayak."""
    return AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
        workers=workers,
    )


@lru_cache(maxsize=None)
def evaluate_app(key: str, workers: int = 1) -> AppEvaluation:
    """Analyze + fuzz one corpus app.  ``workers`` selects the analysis
    engine (see :class:`AnalysisConfig`); results are cached per (app,
    workers) pair."""
    spec = get_spec(key)
    # Build the APK once and share it across all three stages (analysis is
    # read-only and the runtime keeps its own heap).  The Network cannot be
    # shared: each fuzzer's FuzzResult owns its network's traffic trace.
    apk = spec.build_apk()
    report = Extractocol(_config_for(spec, workers)).analyze(apk)
    manual = ManualUiFuzzer().fuzz(apk, spec.build_network())
    auto = AutoUiFuzzer().fuzz(apk, spec.build_network())
    return AppEvaluation(spec=spec, report=report, manual=manual, auto=auto)


def evaluate_corpus(
    keys: Iterable[str] | None = None,
    *,
    app_workers: int = 1,
    analysis_workers: int = 1,
) -> dict[str, AppEvaluation]:
    """Evaluate many apps, fanning out across apps with ``app_workers``
    threads (each app may additionally parallelize its own slicing via
    ``analysis_workers``).  Results land in the same cache ``evaluate_app``
    uses, keyed in input order."""
    key_list = list(keys) if keys is not None else app_keys()
    results = ordered_map(
        lambda key: evaluate_app(key, analysis_workers),
        key_list,
        workers=app_workers,
    )
    return dict(zip(key_list, results))


def clear_cache() -> None:
    evaluate_app.cache_clear()


def render_phase_table(
    keys: Iterable[str] | None = None, *, workers: int = 1
) -> str:
    """Per-app phase-timing table (``repro eval --verbose``).

    Reuses the :class:`~repro.obs.phases.PhaseStats` every cached report
    already carries — apps evaluated earlier in the same process cost
    nothing extra."""
    from ..obs.phases import phase_table

    key_list = list(keys) if keys is not None else app_keys()
    stats = {
        key: ev.report.phase_stats
        for key in key_list
        if (ev := evaluate_app(key, workers)).report.phase_stats is not None
    }
    return phase_table(stats)


__all__ = [
    "AppEvaluation",
    "clear_cache",
    "evaluate_app",
    "evaluate_corpus",
    "render_phase_table",
]
