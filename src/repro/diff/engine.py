"""The diff entry points: reports in, :class:`ProtocolDiff` out.

Three layers, lowest first:

* :func:`diff_dicts` — pure function over two canonical report dicts
  (:func:`repro.core.report.report_to_dict` form).  Deterministic: same
  dicts in, byte-identical ``to_dict()`` out.
* :func:`diff_reports` — the same over live/frozen
  :class:`~repro.core.report.AnalysisReport` objects, with obs
  instrumentation (a ``diff:`` span carrying matched/added/removed/
  changed/breaking counters).
* :func:`diff_targets` — CLI-grade resolution: each side may be a corpus
  key, an ``.sapk`` bundle path, a result-store key, or a generated
  lineage version label (``app@v2``, :mod:`repro.corpus.lineage`).
  Lineage pairs thread the rename lineage through automatically so an
  obfuscated rebuild diffs clean.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from ..obs.tracer import NULL_TRACER
from .classify import classify_graph, classify_pair
from .match import match_transactions
from .model import DIFF_SCHEMA_VERSION, ProtocolDiff
from .normal import report_views


def diff_dicts(
    old: dict,
    new: dict,
    *,
    renames=None,
    span=None,
) -> ProtocolDiff:
    """Diff two canonical report dicts.

    ``renames`` is an optional :class:`~repro.apk.rewrite.RenameMap`
    describing how the *old* snapshot's classes were renamed to produce
    the *new* one; consumer names are mapped back before comparison.
    """
    consumer_map = None
    if renames is not None and renames.class_map:
        consumer_map = renames.inverted().class_map
    old_views = report_views(old)
    new_views = report_views(new, consumer_map=consumer_map)
    match = match_transactions(old_views, new_views)
    diff = ProtocolDiff(
        old_app=old.get("app", ""),
        new_app=new.get("app", ""),
        old_transactions=len(old_views),
        new_transactions=len(new_views),
        matched=[classify_pair(o, n, score) for o, n, score in match.pairs],
        added=[_summary(t) for t in match.unmatched_new],
        removed=[_summary(t) for t in match.unmatched_old],
        graph_changes=classify_graph(match),
    )
    if span:
        span.count("matched", len(diff.matched))
        span.count("added", len(diff.added))
        span.count("removed", len(diff.removed))
        span.count("changed", sum(d.changed for d in diff.matched))
        span.count("breaking", len(diff.breaking_changes()))
    return diff


def _summary(view):
    from .model import TxnSummary

    return TxnSummary(view.txn_id, view.method, view.uri_regex)


def diff_reports(
    old_report,
    new_report,
    *,
    renames=None,
    tracer=NULL_TRACER,
) -> ProtocolDiff:
    """Diff two analysis reports (live or rebuilt by
    :func:`~repro.core.report.report_from_dict`)."""
    from ..core.report import report_to_dict

    with tracer.span(
        f"diff:{old_report.app}->{new_report.app}"
    ) as span:
        return diff_dicts(
            report_to_dict(old_report),
            report_to_dict(new_report),
            renames=renames,
            span=span,
        )


# ------------------------------------------------------------ store cache
def diff_cache_key(old_key: str, new_key: str) -> str:
    """Content address of a cached diff: a function of the two report
    keys (already content addresses themselves) and the diff schema."""
    digest = hashlib.sha256(
        f"{old_key}\x00{new_key}\x00{DIFF_SCHEMA_VERSION}".encode()
    ).hexdigest()
    return f"diff-{digest[:40]}"


def cached_diff(store, old_key: str, new_key: str) -> tuple[dict, bool] | None:
    """The diff of two stored reports, served from the store when cached.

    Returns ``(diff dict, was_cached)``; ``None`` when either report key
    is absent.  A fresh diff is written back under
    :func:`diff_cache_key`, so every ``(old, new)`` pair is computed once
    per store lifetime.
    """
    from ..core.report import report_from_dict

    cache_key = diff_cache_key(old_key, new_key)
    envelope = store.load(cache_key)
    if (
        envelope is not None
        and envelope.get("diff_schema") == DIFF_SCHEMA_VERSION
        and "diff" in envelope
    ):
        return envelope["diff"], True
    old_env = store.load(old_key)
    new_env = store.load(new_key)
    if (
        old_env is None
        or new_env is None
        or "report" not in old_env
        or "report" not in new_env
    ):
        return None
    old_report = report_from_dict(old_env["report"])
    new_report = report_from_dict(new_env["report"])
    diff = diff_reports(old_report, new_report)
    # no "report"/"schema" keys: list_entries and cache probes skip this
    store.put_envelope(cache_key, {
        "diff_schema": DIFF_SCHEMA_VERSION,
        "key": cache_key,
        "old_key": old_key,
        "new_key": new_key,
        "diff": diff.to_dict(),
    })
    return diff.to_dict(), False


# --------------------------------------------------------- CLI resolution
def resolve_diff_target(target: str, *, store=None, workers: int = 1):
    """Resolve one ``repro diff`` operand into ``(report, renames_from_
    base, label)``.

    Tried in order: result-store key (when a store is given), generated
    lineage version (``app@vN``), corpus key, ``.sapk`` path.  Lineage
    versions return their rename lineage so the caller can thread rename
    tolerance between two versions of the same family.
    """
    from ..core.report import report_from_dict

    if store is not None:
        envelope = store.load(target)
        if envelope is not None and "report" in envelope:
            return report_from_dict(envelope["report"]), None, target

    if "@" in target:
        from ..corpus.lineage import build_version

        built = build_version(target)
        report = _analyze(
            built.apk,
            built.config,
            workers,
            store=store,
            renames=built.renames_from_base,
        )
        return report, built.renames_from_base, target

    from ..service.jobs import resolve_target

    try:
        apk, config, label = resolve_target(target)
    except LookupError:
        raise LookupError(
            f"{target!r} is not a stored result key, corpus app, "
            f"lineage version (app@vN) or .sapk bundle"
        ) from None
    report = _analyze(apk, config, workers, store=store)
    return report, None, label


def _analyze(apk, config, workers: int, *, store=None, renames=None):
    """Analyze one diff operand.  With a store, the re-analysis is
    near-free on warm lineages: an already-stored report short-circuits
    outright, otherwise the run goes through ``incremental`` mode (the
    previous version's manifest replays unchanged DP slices, mapped
    through ``renames`` for obfuscated rebuilds) and both the report and
    the fresh manifest are written back."""
    from ..core.extractocol import Extractocol

    config.workers = workers
    if store is None:
        return Extractocol(config).analyze(apk)
    from ..apk.loader import apk_digest

    digest = apk_digest(apk)
    config_key = config.cache_key()
    cached = store.get_report(digest, config_key)
    if cached is not None:
        return cached
    config.mode = "incremental"
    report = Extractocol(config, store=store).analyze(apk, renames=renames)
    store.put(digest, config_key, report)
    return report


def diff_targets(
    old: str,
    new: str,
    *,
    store=None,
    workers: int = 1,
    tracer=NULL_TRACER,
) -> ProtocolDiff:
    """Resolve and diff two CLI-style targets (see
    :func:`resolve_diff_target`)."""
    old_report, old_renames, _ = resolve_diff_target(
        old, store=store, workers=workers
    )
    new_report, new_renames, _ = resolve_diff_target(
        new, store=store, workers=workers
    )
    renames = _relative_renames(old_renames, new_renames)
    return diff_reports(
        old_report, new_report, renames=renames, tracer=tracer
    )


def _relative_renames(old_renames, new_renames):
    """The rename map taking the *old* snapshot's namespace to the
    *new* one, given each side's renames from the lineage base (``None``
    = identity)."""
    if new_renames is None and old_renames is None:
        return None
    if old_renames is None:
        return new_renames
    if new_renames is None:
        return old_renames.inverted()
    from ..apk.rewrite import RenameMap

    inv = old_renames.inverted()
    return RenameMap(
        class_map=_compose(inv.class_map, new_renames.class_map),
        method_map=_compose(inv.method_map, new_renames.method_map),
        field_map=_compose(inv.field_map, new_renames.field_map),
    )


def _compose(first: dict, second: dict) -> dict:
    """old-name -> base -> new-name, dropping identity entries."""
    out = {}
    for old_name, base in first.items():
        mapped = second.get(base, base)
        if mapped != old_name:
            out[old_name] = mapped
    for base, new_name in second.items():
        if base not in first.values() and base != new_name:
            out.setdefault(base, new_name)
    return out


__all__ = [
    "cached_diff",
    "diff_cache_key",
    "diff_dicts",
    "diff_reports",
    "diff_targets",
    "resolve_diff_target",
]
