"""Field-level change classification and the breaking-change taxonomy.

The severity rules encode the middlebox/monitor consumer's view of a
protocol description (paper §1, §6): a change is **breaking** when tooling
built from the *old* report — firewall rules, replay scripts, dependency-
aware testers — would misfire on the *new* app's traffic.

Breaking: a request the old description cannot produce anymore (removed
transaction, removed dependency source/edge, changed method/host/literal
URI segment, removed query key, header or body key, changed body or
response format).  Compatible: the old description still covers the new
traffic (added transaction, added optional query key/header/body key,
widened URI segment).  Info: observations with no protocol-surface impact
(changed unknown-value renderings, consumer set churn).
"""

from __future__ import annotations

from difflib import SequenceMatcher

from .match import MatchResult
from .model import Change, TxnDelta
from .normal import TxnView, WILDCARD

#: Every change kind the classifier can emit, with its fixed severity.
#: Append-only: external tooling keys on these identifiers.
KIND_SEVERITY = {
    "method-changed": "breaking",
    "scheme-changed": "compatible",
    "host-changed": "breaking",
    "uri-segment-added": "breaking",
    "uri-segment-removed": "breaking",
    "uri-segment-changed": "breaking",
    "uri-segment-widened": "compatible",
    "uri-segment-narrowed": "compatible",
    "query-key-added": "compatible",
    "query-key-removed": "breaking",
    "header-added": "compatible",
    "header-removed": "breaking",
    "header-value-changed": "info",
    "body-kind-changed": "breaking",
    "body-key-added": "compatible",
    "body-key-removed": "breaking",
    "body-value-changed": "info",
    "response-kind-changed": "breaking",
    "response-key-added": "compatible",
    "response-key-removed": "compatible",
    "response-value-changed": "info",
    "consumers-changed": "info",
    "dynamic-uri-changed": "info",
    "transaction-added": "compatible",
    "transaction-removed": "breaking",
    "dependency-added": "compatible",
    "dependency-removed": "breaking",
    "dependency-path-changed": "info",
    "dependency-source-removed": "breaking",
}

BREAKING_KINDS = frozenset(
    kind for kind, sev in KIND_SEVERITY.items() if sev == "breaking"
)


def _change(kind: str, field: str, old=None, new=None, detail: str = "") -> Change:
    return Change(
        kind=kind,
        severity=KIND_SEVERITY[kind],
        field=field,
        old=old,
        new=new,
        detail=detail,
    )


def _show(token: str) -> str:
    return token.replace(WILDCARD, "*")


# ---------------------------------------------------------------- URI
def _classify_uri(old: TxnView, new: TxnView, out: list[Change]) -> None:
    ou, nu = old.uri, new.uri
    if ou.scheme != nu.scheme and ou.scheme and nu.scheme:
        out.append(_change("scheme-changed", "uri", ou.scheme, nu.scheme))
    if ou.host != nu.host:
        out.append(_change("host-changed", "uri", _show(ou.host),
                           _show(nu.host)))
    matcher = SequenceMatcher(
        a=list(ou.segments), b=list(nu.segments), autojunk=False
    )
    for op, i1, i2, j1, j2 in matcher.get_opcodes():
        if op == "equal":
            continue
        olds, news = ou.segments[i1:i2], nu.segments[j1:j2]
        for o, n in zip(olds, news):
            if o == n:
                continue
            if n == WILDCARD:
                kind = "uri-segment-widened"
            elif o == WILDCARD:
                kind = "uri-segment-narrowed"
            else:
                kind = "uri-segment-changed"
            out.append(_change(kind, "uri", _show(o), _show(n)))
        for o in olds[len(news):]:
            out.append(_change("uri-segment-removed", "uri", _show(o), None))
        for n in news[len(olds):]:
            out.append(_change("uri-segment-added", "uri", None, _show(n)))
    for key in sorted(set(ou.query_keys) - set(nu.query_keys)):
        out.append(_change("query-key-removed", "query", key, None))
    for key in sorted(set(nu.query_keys) - set(ou.query_keys)):
        out.append(_change("query-key-added", "query", None, key))


# ------------------------------------------------------------- headers
def _classify_headers(old: TxnView, new: TxnView, out: list[Change]) -> None:
    for name in sorted(set(old.headers) - set(new.headers)):
        out.append(_change("header-removed", f"header:{name}",
                           old.headers[name], None))
    for name in sorted(set(new.headers) - set(old.headers)):
        out.append(_change("header-added", f"header:{name}", None,
                           new.headers[name]))
    for name in sorted(set(old.headers) & set(new.headers)):
        if old.headers[name] != new.headers[name]:
            out.append(_change("header-value-changed", f"header:{name}",
                               old.headers[name], new.headers[name]))


# ---------------------------------------------------------------- body
def _classify_body(old: TxnView, new: TxnView, out: list[Change]) -> None:
    if old.body_kind != new.body_kind:
        out.append(_change("body-kind-changed", "body",
                           old.body_kind, new.body_kind))
        return
    for key in sorted(set(old.body_keys) - set(new.body_keys)):
        out.append(_change("body-key-removed", "body", key, None))
    for key in sorted(set(new.body_keys) - set(old.body_keys)):
        out.append(_change("body-key-added", "body", None, key))
    if (
        old.body != new.body
        and set(old.body_keys) == set(new.body_keys)
    ):
        out.append(_change("body-value-changed", "body",
                           old.body, new.body))


# ------------------------------------------------------------ response
def _classify_response(old: TxnView, new: TxnView, out: list[Change]) -> None:
    if old.response_kind != new.response_kind:
        out.append(_change("response-kind-changed", "response",
                           old.response_kind, new.response_kind))
        return
    for key in sorted(set(old.response_keys) - set(new.response_keys)):
        out.append(_change("response-key-removed", "response", key, None))
    for key in sorted(set(new.response_keys) - set(old.response_keys)):
        out.append(_change("response-key-added", "response", None, key))
    if (
        old.response_body != new.response_body
        and set(old.response_keys) == set(new.response_keys)
    ):
        out.append(_change("response-value-changed", "response",
                           old.response_body, new.response_body))


def classify_pair(old: TxnView, new: TxnView, score: float) -> TxnDelta:
    """All field-level changes between one matched transaction pair.
    Dependency edges are classified at the graph level
    (:func:`classify_graph`) because edge identity spans pairs."""
    changes: list[Change] = []
    if old.method != new.method:
        changes.append(_change("method-changed", "method",
                               old.method, new.method))
    _classify_uri(old, new, changes)
    _classify_headers(old, new, changes)
    _classify_body(old, new, changes)
    _classify_response(old, new, changes)
    if old.consumers != new.consumers:
        changes.append(_change(
            "consumers-changed", "response",
            ", ".join(old.consumers) or None,
            ", ".join(new.consumers) or None,
        ))
    if old.dynamic != new.dynamic:
        changes.append(_change("dynamic-uri-changed", "uri",
                               str(old.dynamic), str(new.dynamic)))
    return TxnDelta(
        old_id=old.txn_id,
        new_id=new.txn_id,
        label=old.label,
        similarity=score,
        changes=changes,
    )


def classify_graph(match: MatchResult) -> list[Change]:
    """Transaction- and dependency-level changes across the whole diff.

    Dependency edges are compared in the *old* snapshot's id space: a new
    edge maps back through the pairing; edges touching an unmatched
    transaction cannot survive by definition.  A removed transaction that
    other surviving transactions depended on additionally yields the
    ``dependency-source-removed`` verdict — the reddit ``modhash`` case.
    """
    out: list[Change] = []
    old_of_new = {n.txn_id: o.txn_id for o, n, _ in match.pairs}
    removed_ids = {t.txn_id for t in match.unmatched_old}

    # Edges between transactions that survive in both versions.  Edges
    # touching a removed transaction are reported once, via
    # transaction-removed / dependency-source-removed below — not as a
    # second dependency-removed entry.
    old_edges: dict[tuple[int, int, str], str] = {}
    for o, _, _ in match.pairs:
        for d in o.depends_on:
            if d.src_txn not in removed_ids:
                old_edges[(d.src_txn, d.dst_txn, d.dst_field)] = d.src_path

    new_edges: dict[tuple[int, int, str], str] = {}
    unmapped_new: list = []
    for _, n, _ in match.pairs:
        for d in n.depends_on:
            src = old_of_new.get(d.src_txn)
            dst = old_of_new.get(d.dst_txn)
            if src is None or dst is None:
                unmapped_new.append(d)
            else:
                new_edges[(src, dst, d.dst_field)] = d.src_path
    for t in match.unmatched_new:
        unmapped_new.extend(t.depends_on)

    for key in sorted(set(old_edges) - set(new_edges)):
        src, dst, dst_field = key
        out.append(_change(
            "dependency-removed", "dependency",
            f"txn{src}[{old_edges[key]}] -> txn{dst}.{dst_field}", None,
            detail="a request field no longer originates from this "
                   "response; dependency-aware tooling misfires",
        ))
    for key in sorted(set(new_edges) - set(old_edges)):
        src, dst, dst_field = key
        out.append(_change(
            "dependency-added", "dependency",
            None, f"txn{src}[{new_edges[key]}] -> txn{dst}.{dst_field}",
        ))
    for key in sorted(set(old_edges) & set(new_edges)):
        if old_edges[key] != new_edges[key]:
            src, dst, dst_field = key
            out.append(_change(
                "dependency-path-changed", "dependency",
                old_edges[key], new_edges[key],
                detail=f"txn{src} -> txn{dst}.{dst_field}",
            ))
    for d in sorted(unmapped_new, key=str):
        out.append(_change("dependency-added", "dependency", None, str(d)))

    # transaction-level adds/removes + removed dependency sources
    surviving_dependents = [
        d
        for o, _, _ in match.pairs
        for d in o.depends_on
        if d.src_txn in removed_ids
    ]
    for t in match.unmatched_old:
        out.append(_change("transaction-removed", "transaction",
                           t.label, None))
        feeds = sorted(
            str(d) for d in surviving_dependents if d.src_txn == t.txn_id
        )
        if feeds:
            out.append(_change(
                "dependency-source-removed", "dependency",
                t.label, None,
                detail="removed transaction fed: " + "; ".join(feeds),
            ))
    for t in match.unmatched_new:
        out.append(_change("transaction-added", "transaction",
                           None, t.label))
    return out


__all__ = [
    "BREAKING_KINDS",
    "KIND_SEVERITY",
    "classify_graph",
    "classify_pair",
]
