"""The diff data model: changes, matched-transaction deltas, verdicts.

Everything here is plain data with a canonical dict form.  ``to_dict`` is
deterministic — every collection is emitted in a sorted, stable order — so
two diffs of byte-identical reports serialise byte-identically, which is
what lets the service cache diffs in the content-addressed result store
and what the CI smoke job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bump when the ProtocolDiff dict shape changes incompatibly.  Cached
#: diff envelopes with another version are recomputed, never mis-parsed.
DIFF_SCHEMA_VERSION = 1

#: Change severities, most severe first.
SEVERITIES = ("breaking", "compatible", "info")


@dataclass(frozen=True)
class Change:
    """One field-level protocol change on a matched transaction pair (or,
    for dependency/transaction-level kinds, on the diff as a whole).

    ``kind`` is a stable identifier from the change taxonomy (DESIGN.md
    "Protocol diffing"); ``field`` names what changed (``uri``, ``query``,
    ``header:<name>``, ``body``, ``response``, ``method``, ``dependency``,
    ``transaction``); ``old``/``new`` carry the before/after renderings.
    """

    kind: str
    severity: str
    field: str
    old: str | None = None
    new: str | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "field": self.field,
            "old": self.old,
            "new": self.new,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: dict) -> "Change":
        return Change(
            kind=data["kind"],
            severity=data["severity"],
            field=data["field"],
            old=data.get("old"),
            new=data.get("new"),
            detail=data.get("detail", ""),
        )

    def sort_key(self) -> tuple:
        return (
            SEVERITIES.index(self.severity),
            self.field,
            self.kind,
            self.old or "",
            self.new or "",
        )

    def __str__(self) -> str:
        parts = [f"[{self.severity}] {self.kind} ({self.field})"]
        if self.old is not None or self.new is not None:
            parts.append(f"{self.old!r} -> {self.new!r}")
        if self.detail:
            parts.append(self.detail)
        return ": ".join(parts)


@dataclass(frozen=True)
class TxnSummary:
    """The identity of one transaction, for added/removed listings."""

    txn_id: int
    method: str
    uri_regex: str

    @property
    def label(self) -> str:
        return f"{self.method} {self.uri_regex}"

    def to_dict(self) -> dict:
        return {"id": self.txn_id, "method": self.method,
                "uri_regex": self.uri_regex}

    @staticmethod
    def from_dict(data: dict) -> "TxnSummary":
        return TxnSummary(data["id"], data["method"], data["uri_regex"])


@dataclass
class TxnDelta:
    """A matched old/new transaction pair and its classified changes."""

    old_id: int
    new_id: int
    label: str
    similarity: float
    changes: list[Change] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.changes)

    def to_dict(self) -> dict:
        return {
            "old_id": self.old_id,
            "new_id": self.new_id,
            "label": self.label,
            "similarity": self.similarity,
            "changes": [c.to_dict() for c in sorted(
                self.changes, key=Change.sort_key)],
        }

    @staticmethod
    def from_dict(data: dict) -> "TxnDelta":
        return TxnDelta(
            old_id=data["old_id"],
            new_id=data["new_id"],
            label=data["label"],
            similarity=data["similarity"],
            changes=[Change.from_dict(c) for c in data.get("changes", ())],
        )


@dataclass
class ProtocolDiff:
    """The full comparison of two protocol snapshots."""

    old_app: str
    new_app: str
    old_transactions: int = 0
    new_transactions: int = 0
    #: every matched pair (changed or not); serialisation keeps only the
    #: changed ones plus the match count, so a self-diff stays tiny
    matched: list[TxnDelta] = field(default_factory=list)
    added: list[TxnSummary] = field(default_factory=list)
    removed: list[TxnSummary] = field(default_factory=list)
    #: dependency/transaction-level changes (edge added/removed, source
    #: removed, transaction added/removed)
    graph_changes: list[Change] = field(default_factory=list)

    # -- verdict ----------------------------------------------------------
    def all_changes(self) -> list[Change]:
        out = list(self.graph_changes)
        for delta in self.matched:
            out.extend(delta.changes)
        return sorted(out, key=Change.sort_key)

    def breaking_changes(self) -> list[Change]:
        return [c for c in self.all_changes() if c.severity == "breaking"]

    @property
    def breaking(self) -> bool:
        return bool(self.breaking_changes())

    @property
    def is_empty(self) -> bool:
        return (
            not self.added
            and not self.removed
            and not self.graph_changes
            and all(not d.changed for d in self.matched)
        )

    @property
    def verdict(self) -> str:
        if self.is_empty:
            return "identical"
        return "breaking" if self.breaking else "compatible"

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        changed = sorted(
            (d for d in self.matched if d.changed),
            key=lambda d: (d.old_id, d.new_id),
        )
        return {
            "schema": DIFF_SCHEMA_VERSION,
            "old": {"app": self.old_app,
                    "transactions": self.old_transactions},
            "new": {"app": self.new_app,
                    "transactions": self.new_transactions},
            "matched": len(self.matched),
            "changed": [d.to_dict() for d in changed],
            "added": [t.to_dict() for t in sorted(
                self.added, key=lambda t: t.txn_id)],
            "removed": [t.to_dict() for t in sorted(
                self.removed, key=lambda t: t.txn_id)],
            "graph_changes": [c.to_dict() for c in sorted(
                self.graph_changes, key=Change.sort_key)],
            "breaking": self.breaking,
            "verdict": self.verdict,
        }

    def summary(self) -> str:
        changed = [d for d in self.matched if d.changed]
        lines = [
            f"protocol diff: {self.old_app} -> {self.new_app}",
            f"transactions: {self.old_transactions} -> "
            f"{self.new_transactions} "
            f"({len(self.matched)} matched, {len(self.added)} added, "
            f"{len(self.removed)} removed, {len(changed)} changed)",
            f"verdict: {self.verdict}",
        ]
        for delta in sorted(changed, key=lambda d: (d.old_id, d.new_id)):
            lines.append(f"~ {delta.label}")
            for change in sorted(delta.changes, key=Change.sort_key):
                lines.append(f"    {change}")
        for txn in sorted(self.added, key=lambda t: t.txn_id):
            lines.append(f"+ {txn.label}")
        for txn in sorted(self.removed, key=lambda t: t.txn_id):
            lines.append(f"- {txn.label}")
        for change in sorted(self.graph_changes, key=Change.sort_key):
            lines.append(f"! {change}")
        return "\n".join(lines)


def diff_from_dict(data: dict) -> ProtocolDiff:
    """Rebuild a diff view from :meth:`ProtocolDiff.to_dict` output.

    The rebuilt diff carries only the *changed* matched pairs (the dict
    form drops unchanged ones), so ``matched`` counts differ from the live
    object; verdict, breaking set and renderings are all preserved.
    """
    diff = ProtocolDiff(
        old_app=data["old"]["app"],
        new_app=data["new"]["app"],
        old_transactions=data["old"]["transactions"],
        new_transactions=data["new"]["transactions"],
        matched=[TxnDelta.from_dict(d) for d in data.get("changed", ())],
        added=[TxnSummary.from_dict(t) for t in data.get("added", ())],
        removed=[TxnSummary.from_dict(t) for t in data.get("removed", ())],
        graph_changes=[Change.from_dict(c)
                       for c in data.get("graph_changes", ())],
    )
    return diff


def render_markdown(diff: ProtocolDiff) -> str:
    """GitHub-flavoured markdown rendering (``repro diff --markdown``)."""
    changed = sorted((d for d in diff.matched if d.changed),
                     key=lambda d: (d.old_id, d.new_id))
    lines = [
        f"# Protocol diff: `{diff.old_app}` → `{diff.new_app}`",
        "",
        f"**Verdict: {diff.verdict}**"
        + (f" — {len(diff.breaking_changes())} breaking change(s)"
           if diff.breaking else ""),
        "",
        f"| | old | new |",
        f"|---|---|---|",
        f"| transactions | {diff.old_transactions} "
        f"| {diff.new_transactions} |",
        f"| matched | {len(diff.matched)} | |",
        f"| added / removed / changed | {len(diff.added)} "
        f"/ {len(diff.removed)} / {len(changed)} | |",
    ]
    if changed:
        lines += ["", "## Changed transactions", ""]
        for delta in changed:
            lines.append(f"### `{delta.label}`")
            lines.append("")
            for change in sorted(delta.changes, key=Change.sort_key):
                lines.append(f"- {change}")
            lines.append("")
    if diff.added:
        lines += ["", "## Added", ""]
        lines += [f"- `{t.label}`"
                  for t in sorted(diff.added, key=lambda t: t.txn_id)]
    if diff.removed:
        lines += ["", "## Removed", ""]
        lines += [f"- `{t.label}`"
                  for t in sorted(diff.removed, key=lambda t: t.txn_id)]
    if diff.graph_changes:
        lines += ["", "## Dependency graph", ""]
        lines += [f"- {c}" for c in sorted(diff.graph_changes,
                                           key=Change.sort_key)]
    return "\n".join(lines).rstrip() + "\n"


__all__ = [
    "Change",
    "DIFF_SCHEMA_VERSION",
    "ProtocolDiff",
    "SEVERITIES",
    "TxnDelta",
    "TxnSummary",
    "diff_from_dict",
    "render_markdown",
]
