"""Protocol-evolution analysis: semantic signature diffing across versions.

Apps silently change their HTTP(S) protocols with every release; the
middleboxes, traffic monitors and testing tools built from an Extractocol
report go stale just as silently (paper §1, §6).  This package compares
two analysis reports — two snapshots of the same app's protocol — and
produces a deterministic, serializable :class:`~repro.diff.model
.ProtocolDiff`:

* **transaction matching** (:mod:`repro.diff.match`) — stable pairing of
  request/response signatures across versions by URI/method/body-shape
  similarity, tolerant of renamed classes via ``apk.rewrite.RenameMap``
  lineages,
* **change classification** (:mod:`repro.diff.classify`) — added/removed/
  changed URI segments, query keys, headers, JSON/XML body keys and
  inter-transaction dependency edges, each labelled with a severity,
* **breaking-change verdict** — a removed dependency source (the reddit
  ``modhash`` flow) is breaking; an added optional query key is not.

Entry points: :func:`~repro.diff.engine.diff_reports` for in-process use,
``repro diff <old> <new>`` on the CLI (exit 1 on breaking changes, for
CI), ``GET /diff/<key1>/<key2>`` on the analysis service (store-backed
caching), and :func:`repro.evalx.drift.render_drift_table` over the
generated version lineages in :mod:`repro.corpus.lineage`.
"""

from .classify import BREAKING_KINDS
from .engine import diff_dicts, diff_reports, diff_targets
from .model import (
    DIFF_SCHEMA_VERSION,
    Change,
    ProtocolDiff,
    TxnDelta,
    TxnSummary,
    diff_from_dict,
    render_markdown,
)

__all__ = [
    "BREAKING_KINDS",
    "Change",
    "DIFF_SCHEMA_VERSION",
    "ProtocolDiff",
    "TxnDelta",
    "TxnSummary",
    "diff_dicts",
    "diff_from_dict",
    "diff_reports",
    "diff_targets",
    "render_markdown",
]
