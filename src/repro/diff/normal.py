"""Normalise serialised transactions into comparable views.

The diff operates on the canonical report dict form
(:func:`repro.core.report.report_to_dict`), which renders signatures as
regex/term strings.  This module re-tokenises those strings into the
shapes the matcher and classifier compare:

* URI regexes become ``(scheme, host, path segments, query keys)`` with
  every non-literal region collapsed to a single wildcard sentinel,
* JSON/XML/query body term strings become sorted key tuples (the same
  constant-keyword unit Figure 7 counts),
* dependency strings become parsed :class:`~repro.deps.transactions
  .Dependency` edges.

Renamed classes (an obfuscated rebuild, §5.1) are tolerated by mapping
the *new* snapshot's consumer names back through an inverted
:class:`~repro.apk.rewrite.RenameMap` before comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core.report import _dep_from_str
from ..deps.transactions import Dependency

#: One collapsed non-literal region of a signature regex.
WILDCARD = "\x00"

_JSON_KEY_RE = re.compile(r"\(([A-Za-z_][\w.\-]*)\): ")
_QUERY_KEY_RE = re.compile(r"([A-Za-z_][\w.\-]*)=")
_XML_TAG_RE = re.compile(r"<([A-Za-z_][\w.\-]*)")


def untokenize(regex: str) -> str:
    """Collapse a signature regex back to literal text with every
    non-literal construct (classes, groups, quantified atoms) replaced by
    a single :data:`WILDCARD` sentinel.

    Signature regexes are machine-generated from a small grammar
    (:mod:`repro.signature.regex`), so this handles exactly the constructs
    that grammar emits — escapes, ``(?:...)`` groups, character classes
    and quantifiers — and degrades conservatively (more wildcard, never
    wrong literals) on anything else.
    """
    s = regex
    if s.startswith("^"):
        s = s[1:]
    if s.endswith("$") and not s.endswith("\\$"):
        s = s[:-1]
    out: list[str] = []
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        if c == "\\":
            if i + 1 < n:
                out.append(s[i + 1])
            i += 2
        elif c == "(":
            depth = 0
            j = i
            while j < n:
                if s[j] == "\\":
                    j += 2
                    continue
                if s[j] == "(":
                    depth += 1
                elif s[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            i = min(j, n - 1) + 1
            if i < n and s[i] in "*+?":
                i += 1
            out.append(WILDCARD)
        elif c == "[":
            j = i + 1
            while j < n and s[j] != "]":
                if s[j] == "\\":
                    j += 1
                j += 1
            i = j + 1
            if i < n and s[i] in "*+?":
                i += 1
            out.append(WILDCARD)
        elif c == ".":
            i += 1
            if i < n and s[i] in "*+?":
                i += 1
            out.append(WILDCARD)
        elif c in "*+?":
            if out:
                out[-1] = WILDCARD
            i += 1
        else:
            out.append(c)
            i += 1
    text = "".join(out)
    while WILDCARD + WILDCARD in text:
        text = text.replace(WILDCARD + WILDCARD, WILDCARD)
    return text


@dataclass(frozen=True)
class UriShape:
    """A URI regex decomposed for structural comparison."""

    scheme: str
    host: str
    segments: tuple[str, ...]
    query_keys: tuple[str, ...]
    #: query chunks without a literal key (wholly dynamic)
    opaque_query: int = 0

    @property
    def is_opaque(self) -> bool:
        """True for URIs with no literal structure at all (``GET (.*)``)."""
        return self.host in ("", WILDCARD) and all(
            seg == WILDCARD for seg in self.segments
        )


def parse_uri(regex: str) -> UriShape:
    text = untokenize(regex)
    scheme, sep, rest = text.partition("://")
    if not sep:
        scheme, rest = "", text
    host, _, path = rest.partition("/")
    path, _, query = path.partition("?")
    if WILDCARD in host:
        # a dynamic host offers no anchor; treat the whole authority as
        # one wildcard segment
        host = WILDCARD if host == WILDCARD else host
    segments = tuple(seg for seg in path.split("/") if seg != "")
    keys: list[str] = []
    opaque = 0
    if query:
        for chunk in query.split("&"):
            key, eq, _ = chunk.partition("=")
            if eq and key and WILDCARD not in key:
                keys.append(key)
            elif chunk:
                opaque += 1
    return UriShape(
        scheme=scheme,
        host=host,
        segments=segments,
        query_keys=tuple(sorted(set(keys))),
        opaque_query=opaque,
    )


def body_keys(body: str | None, kind: str | None) -> tuple[str, ...]:
    """Constant structural keys of a rendered body term: JSON keys, XML
    tags, or query-string keys — sorted and deduplicated."""
    if not body:
        return ()
    if kind == "json" or (kind is None and body.lstrip().startswith("{")):
        found = _JSON_KEY_RE.findall(body)
    elif kind == "xml" or (kind is None and body.lstrip().startswith("<")):
        found = _XML_TAG_RE.findall(body)
    else:
        found = _QUERY_KEY_RE.findall(body)
    return tuple(sorted(set(found)))


@dataclass
class TxnView:
    """One transaction, normalised for matching and classification."""

    txn_id: int
    method: str
    uri_regex: str
    uri: UriShape
    headers: dict[str, str]
    body: str | None
    body_kind: str | None
    body_keys: tuple[str, ...]
    response_kind: str
    response_body: str | None
    response_keys: tuple[str, ...]
    consumers: tuple[str, ...]
    depends_on: tuple[Dependency, ...]
    dynamic: bool

    @property
    def label(self) -> str:
        return f"{self.method} {self.uri_regex}"

    @property
    def identity(self) -> tuple:
        """The exact-match key used by the first pairing round."""
        return (self.method, self.uri_regex, self.body, self.response_body)


def txn_view(data: dict, *, consumer_map: dict[str, str] | None = None) -> TxnView:
    """Build a :class:`TxnView` from one ``report_to_dict`` transaction.

    ``consumer_map`` (old-name ← new-name, i.e. an inverted rename map's
    ``class_map``) translates renamed consumer classes back into the old
    snapshot's namespace so an obfuscated rebuild self-compares clean.
    """
    consumers = list(data.get("consumers", ()))
    if consumer_map:
        consumers = [_map_name(c, consumer_map) for c in consumers]
    return TxnView(
        txn_id=data["id"],
        method=data["method"],
        uri_regex=data["uri_regex"],
        uri=parse_uri(data["uri_regex"]),
        headers=dict(data.get("headers", ())),
        body=data.get("body"),
        body_kind=data.get("body_kind"),
        body_keys=body_keys(data.get("body"), data.get("body_kind")),
        response_kind=data.get("response_kind", "unknown"),
        response_body=data.get("response_body"),
        response_keys=body_keys(
            data.get("response_body"), data.get("response_kind")
        ),
        consumers=tuple(sorted(set(consumers))),
        depends_on=tuple(
            _dep_from_str(d) for d in data.get("depends_on", ())
        ),
        dynamic=data.get("dynamic_uri", False),
    )


def _map_name(name: str, mapping: dict[str, str]) -> str:
    """Map a consumer name through a class rename map.  Consumers are
    class names or dotted ``Class.member`` references; try the full name
    first, then the longest renamed class prefix."""
    if name in mapping:
        return mapping[name]
    prefix = name
    while "." in prefix:
        prefix = prefix.rsplit(".", 1)[0]
        if prefix in mapping:
            return mapping[prefix] + name[len(prefix):]
    return name


def report_views(
    report_dict: dict, *, consumer_map: dict[str, str] | None = None
) -> list[TxnView]:
    """All identified transactions of a report dict, in id order."""
    views = [
        txn_view(t, consumer_map=consumer_map)
        for t in report_dict.get("transactions", ())
    ]
    return sorted(views, key=lambda v: v.txn_id)


__all__ = [
    "TxnView",
    "UriShape",
    "WILDCARD",
    "body_keys",
    "parse_uri",
    "report_views",
    "txn_view",
    "untokenize",
]
