"""Stable transaction pairing across two protocol snapshots.

Two rounds:

1. **Exact** — transactions whose ``(method, uri regex, body, response
   body)`` renderings are identical pair up first, in id order.  A
   self-diff resolves entirely here.
2. **Similarity** — the remainder is scored pairwise on structural
   similarity (host, path segments, query keys, body shape, response
   shape) and paired greedily, highest score first, with ties broken by
   ``(old id, new id)``.  Greedy-on-sorted-pairs is deterministic and
   order-independent, which the byte-identical-JSON contract needs.

Pairs below :data:`MATCH_THRESHOLD` stay unmatched and surface as
removed + added transactions instead of a matched pair with a pile of
changes — a renamed endpoint that shares nothing with its predecessor
*is* a removal plus an addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from .normal import TxnView, WILDCARD

#: Minimum similarity for a cross-version pair to count as "the same
#: transaction, changed" rather than a removal plus an addition.
MATCH_THRESHOLD = 0.55

#: Component weights; they sum to 1.0.
_W_METHOD = 0.15
_W_HOST = 0.15
_W_PATH = 0.40
_W_QUERY = 0.10
_W_BODY = 0.15
_W_RESPONSE = 0.05


@dataclass(frozen=True)
class MatchResult:
    pairs: tuple[tuple[TxnView, TxnView, float], ...]
    unmatched_old: tuple[TxnView, ...]
    unmatched_new: tuple[TxnView, ...]


def _jaccard(a: tuple[str, ...], b: tuple[str, ...]) -> float:
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


def _segment_similarity(a: tuple[str, ...], b: tuple[str, ...]) -> float:
    if not a and not b:
        return 1.0
    return SequenceMatcher(a=list(a), b=list(b), autojunk=False).ratio()


def similarity(old: TxnView, new: TxnView) -> float:
    """Structural similarity in [0, 1].  Purely a function of the two
    views — no global state — so scores are reproducible."""
    score = 0.0
    if old.method == new.method:
        score += _W_METHOD
    if old.uri.host == new.uri.host:
        score += _W_HOST
    elif WILDCARD in (old.uri.host, new.uri.host):
        score += _W_HOST / 2
    score += _W_PATH * _segment_similarity(old.uri.segments, new.uri.segments)
    score += _W_QUERY * _jaccard(old.uri.query_keys, new.uri.query_keys)
    body_score = 0.0
    if old.body_kind == new.body_kind:
        body_score += 1 / 3
    body_score += (2 / 3) * _jaccard(old.body_keys, new.body_keys)
    score += _W_BODY * body_score
    resp_score = 0.0
    if old.response_kind == new.response_kind:
        resp_score += 1 / 2
    resp_score += (1 / 2) * _jaccard(old.response_keys, new.response_keys)
    score += _W_RESPONSE * resp_score
    return score


def match_transactions(
    old: list[TxnView], new: list[TxnView]
) -> MatchResult:
    pairs: list[tuple[TxnView, TxnView, float]] = []
    used_old: set[int] = set()
    used_new: set[int] = set()

    # Round 1: exact signature identity, paired in id order.
    by_identity: dict[tuple, list[TxnView]] = {}
    for txn in new:
        by_identity.setdefault(txn.identity, []).append(txn)
    for txn in old:
        bucket = by_identity.get(txn.identity)
        if bucket:
            partner = bucket.pop(0)
            pairs.append((txn, partner, 1.0))
            used_old.add(txn.txn_id)
            used_new.add(partner.txn_id)

    # Round 2: similarity scoring over the remainder.
    remaining_old = [t for t in old if t.txn_id not in used_old]
    remaining_new = [t for t in new if t.txn_id not in used_new]
    scored = sorted(
        (
            (similarity(o, n), o, n)
            for o in remaining_old
            for n in remaining_new
        ),
        key=lambda item: (-item[0], item[1].txn_id, item[2].txn_id),
    )
    for score, o, n in scored:
        if score < MATCH_THRESHOLD:
            break
        if o.txn_id in used_old or n.txn_id in used_new:
            continue
        pairs.append((o, n, round(score, 4)))
        used_old.add(o.txn_id)
        used_new.add(n.txn_id)

    pairs.sort(key=lambda p: (p[0].txn_id, p[1].txn_id))
    return MatchResult(
        pairs=tuple(pairs),
        unmatched_old=tuple(
            t for t in old if t.txn_id not in used_old
        ),
        unmatched_new=tuple(
            t for t in new if t.txn_id not in used_new
        ),
    )


__all__ = ["MATCH_THRESHOLD", "MatchResult", "match_transactions", "similarity"]
