"""Analysis configuration (the knobs paper §5 varies)."""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields

#: Fields that select *how* the analysis executes, not *what* it computes.
#: Reports are identical across these knobs (the parallel engine is
#: differentially tested against the serial one; provenance recording only
#: adds side tables to the slices), so the service result store must not
#: shard its cache on them.
_EXECUTION_FIELDS = frozenset(
    {"workers", "executor", "record_provenance", "mode"}
)


def _default_workers() -> int:
    """Default worker count; ``REPRO_WORKERS`` overrides (the CI proc-smoke
    job runs the whole pipeline suite under ``REPRO_WORKERS=2``)."""
    return int(os.environ.get("REPRO_WORKERS", "1"))


def _default_executor() -> str:
    """Default executor knob; ``REPRO_EXECUTOR`` overrides.  ``"auto"``
    resolves to the process engine where fork is available (see
    :func:`repro.perf.parallel.default_executor`)."""
    return os.environ.get("REPRO_EXECUTOR", "auto")


@dataclass
class AnalysisConfig:
    """Configuration for one Extractocol run.

    ``async_heuristic`` — §3.4's asynchronous-event handling.  The paper
    disables it for open-source apps and enables it for closed-source apps
    (§5.1); disabled means implicit data flows across event boundaries are
    not tracked (0 hops), enabled tracks one hop.

    ``scope_prefixes`` — restrict reported transactions to demarcation
    points inside the given class-name prefixes (the Kayak case study
    scopes to ``com.kayak`` to exclude external libraries, §5.3).

    ``use_slicing`` — when True (default), signature building is scoped to
    the methods the network-aware slices identified; False interprets every
    entry point unrestricted (slower, used for ablation).

    ``rounds`` — global signature-building iterations; 2 lets values stored
    by one event (login response tokens, DB rows) surface in signatures of
    other events.

    ``workers`` — demarcation points sliced concurrently.  ``1`` (default)
    runs the serial reference engine; ``>= 2`` switches to the memoized
    parallel engine (a shared :class:`~repro.perf.index.ProgramIndex` plus
    an executor fan-out); ``0`` auto-sizes to the CPU count.  Reports are
    identical between the two engines — the serial path is kept as the
    differential-testing baseline.

    ``executor`` — which engine backs the ``workers >= 2`` fan-out:

    ============ ============================================================
    ``"auto"``   the default: ``process`` where fork is available, else
                 ``thread``
    ``"serial"`` memoized engine, but demarcation points sliced in a plain
                 loop (isolates the memoization gain from the fan-out gain)
    ``"thread"`` in-process pool; artifacts shared, fan-out clamped to the
                 usable core count (GIL-bound)
    ``"process"`` persistent :class:`~repro.perf.procpool.ProcPool` — fork
                 workers inherit the ProgramIndex, spawn workers get it
                 pickled once; slice results travel back per chunk.  Falls
                 back to threads (with an ``executor_fallbacks`` metric and
                 a one-time warning) only when no pool can be built
    ============ ============================================================

    Reports are byte-identical across all four — the executor is an
    execution knob, excluded from :meth:`cache_key`.
    """

    async_heuristic: bool = True
    scope_prefixes: tuple[str, ...] = ()
    use_slicing: bool = True
    rounds: int = 2
    max_async_hops_override: int | None = None
    #: §4 extensions (off by default, as in the paper's prototype):
    #: model intra-app Intent messaging / direct java.net.Socket use.
    model_intents: bool = False
    model_sockets: bool = False
    workers: int = field(default_factory=_default_workers)
    executor: str = field(default_factory=_default_executor)
    #: record taint provenance parent links for ``repro explain``; an
    #: execution knob — the report is unchanged, only slice side tables grow
    record_provenance: bool = False
    #: pre-analysis lint gate (``repro.lint``): "off" (default) skips lint
    #: entirely; "record" carries findings on the report; "error" aborts on
    #: error-severity findings; "strict" aborts on warnings too.  Semantic:
    #: findings land in the serialised report, so the cache shards on it.
    lint_level: str = "off"
    #: how the engine decides what to analyze (``repro.incr``):
    #:
    #: ============== =====================================================
    #: ``"full"``      whole-program pipeline (the reference engine)
    #: ``"targeted"``  demand-driven: demarcation points found by the cheap
    #:                 seed index, def-use materialized only for the
    #:                 backward-reachable region (SEM006 lints the seed
    #:                 index against the full scan)
    #: ``"incremental"`` replay cached DP slices whose fingerprinted
    #:                 backward-reachable method set is unchanged since the
    #:                 stored manifest; re-slice only dirtied DPs
    #: ============== =====================================================
    #:
    #: An execution knob: reports are byte-identical across modes (warm
    #: incremental runs assert identity against the cold report; targeted
    #: equivalence is pinned by tests and kept honest by lint rule SEM006),
    #: so the result store must not shard on it.
    mode: str = "full"

    @property
    def max_async_hops(self) -> int:
        if self.max_async_hops_override is not None:
            return self.max_async_hops_override
        return 1 if self.async_heuristic else 0

    @property
    def parallel(self) -> bool:
        """True when the memoized parallel engine is selected."""
        from ..perf.parallel import resolve_workers

        return resolve_workers(self.workers) > 1

    @property
    def resolved_executor(self) -> str:
        """The concrete engine ``executor`` selects (``auto`` resolved)."""
        from ..perf.parallel import resolve_executor

        return resolve_executor(self.executor)

    def semantic_fields(self) -> dict:
        """The fields that can change analysis *output*, as JSON-safe
        values — every dataclass field except the execution knobs, so a
        newly added knob shards the cache by default instead of silently
        aliasing stale entries."""
        out = {}
        for f in sorted(fields(self), key=lambda f: f.name):
            if f.name in _EXECUTION_FIELDS:
                continue
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def cache_key(self) -> str:
        """Stable content hash of the semantically relevant configuration.

        Two configs with the same key produce byte-identical reports for
        the same APK; ``workers``/``executor`` are excluded, so a report
        analysed serially is a cache hit for a parallel request and vice
        versa."""
        blob = json.dumps(
            self.semantic_fields(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


__all__ = ["AnalysisConfig"]
