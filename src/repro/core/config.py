"""Analysis configuration (the knobs paper §5 varies)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AnalysisConfig:
    """Configuration for one Extractocol run.

    ``async_heuristic`` — §3.4's asynchronous-event handling.  The paper
    disables it for open-source apps and enables it for closed-source apps
    (§5.1); disabled means implicit data flows across event boundaries are
    not tracked (0 hops), enabled tracks one hop.

    ``scope_prefixes`` — restrict reported transactions to demarcation
    points inside the given class-name prefixes (the Kayak case study
    scopes to ``com.kayak`` to exclude external libraries, §5.3).

    ``use_slicing`` — when True (default), signature building is scoped to
    the methods the network-aware slices identified; False interprets every
    entry point unrestricted (slower, used for ablation).

    ``rounds`` — global signature-building iterations; 2 lets values stored
    by one event (login response tokens, DB rows) surface in signatures of
    other events.
    """

    async_heuristic: bool = True
    scope_prefixes: tuple[str, ...] = ()
    use_slicing: bool = True
    rounds: int = 2
    max_async_hops_override: int | None = None
    #: §4 extensions (off by default, as in the paper's prototype):
    #: model intra-app Intent messaging / direct java.net.Socket use.
    model_intents: bool = False
    model_sockets: bool = False

    @property
    def max_async_hops(self) -> int:
        if self.max_async_hops_override is not None:
            return self.max_async_hops_override
        return 1 if self.async_heuristic else 0


__all__ = ["AnalysisConfig"]
