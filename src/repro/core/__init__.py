"""Pipeline core: configuration, the Extractocol analyzer, reports."""

from .config import AnalysisConfig
from .extractocol import Extractocol
from .report import AnalysisReport, SignatureStats

__all__ = ["AnalysisConfig", "AnalysisReport", "Extractocol", "SignatureStats"]
