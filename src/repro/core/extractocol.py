"""The Extractocol pipeline (paper Figure 2).

``Extractocol().analyze(apk)`` runs the three phases end to end:

1. **Network-aware program slicing** — scan demarcation points, run
   bidirectional taint propagation, augment forward slices (§3.1).
2. **Signature extraction** — flow-sensitive abstract interpretation scoped
   to the slices, producing request/response signatures (§3.2).
3. **Message dependency analysis** — request-response pairing and
   field-granularity inter-transaction dependencies (§3.3).
"""

from __future__ import annotations

import time
from dataclasses import replace

from collections import deque

from ..apk.model import Apk, TriggerKind
from ..cfg.callgraph import build_callgraph
from ..deps.interdep import infer_dependencies
from ..deps.transactions import Transaction, from_record
from ..obs.phases import PhaseStats
from ..obs.tracer import NULL_TRACER
from ..perf.index import ProgramIndex
from ..semantics.async_model import compute_event_roots, discover_callbacks
from ..semantics.model import SemanticModel
from ..signature.builder import SignatureInterpreter
from ..slicing.demarcation import DemarcationRegistry
from ..slicing.slicer import NetworkSlicer
from ..taint.engine import TaintConfig
from .config import AnalysisConfig
from .report import AnalysisReport


class Extractocol:
    """The analysis entry point.

    Stateless across :meth:`analyze` calls except for two observability
    artifacts refreshed per call: ``last_slicing`` (the raw
    :class:`~repro.slicing.slicer.SlicingReport`, needed by
    ``repro explain``) and the spans emitted on ``tracer`` (the default
    :data:`~repro.obs.tracer.NULL_TRACER` discards them for free).
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        *,
        model: SemanticModel | None = None,
        registry: DemarcationRegistry | None = None,
        tracer=NULL_TRACER,
        store=None,
    ) -> None:
        self.config = config or AnalysisConfig()
        self.model = model
        self.registry = registry
        self.tracer = tracer
        self.store = store
        self.last_slicing = None
        self.last_manifest = None

    # ------------------------------------------------------------------ phases
    def analyze(self, apk: Apk, *, renames=None) -> AnalysisReport:
        """Analyze ``apk`` under ``config.mode``:

        * ``full`` — the reference whole-program pipeline;
        * ``targeted`` — demand-driven: demarcation scan restricted to the
          bytecode-search seed index, def-use warmed for the reachable
          region only (:mod:`repro.incr.targeted`);
        * ``incremental`` — diff the store's manifest for this app against
          the new program's fingerprints and replay unchanged DP slices
          (:mod:`repro.incr.reuse`); ``renames`` is the
          :class:`~repro.apk.rewrite.RenameMap` from the manifest's version
          to this one, for obfuscated re-releases.

        All three produce byte-identical reports.  When a ``store`` was
        given, every mode leaves a fresh manifest behind for the next
        warm run (skipped under ``record_provenance`` — provenance tables
        are not serialized, so cached slices could not carry them).
        """
        if self.config.mode not in ("full", "targeted", "incremental"):
            raise ValueError(f"unknown analysis mode: {self.config.mode!r}")
        started = time.perf_counter()
        stats = PhaseStats()
        app_span = self.tracer.span(f"analyze:{apk.name}")
        program = apk.program

        # Opt-in pre-analysis lint gate (DESIGN.md "Static checking"): the
        # default "off" costs exactly this one branch; any other level runs
        # the static pass families and may abort before the pipeline.
        lint_findings = []
        if self.config.lint_level != "off":
            from ..lint.runner import gate as lint_gate
            from ..lint.runner import lint_apk

            with app_span.child("phase:lint") as sp:
                t0 = time.perf_counter()
                lint_report = lint_apk(
                    apk, registry=self.registry, model=self.model
                )
                lint_gate(lint_report, self.config.lint_level)
                lint_findings = lint_report.findings
                stats.seconds["lint"] = time.perf_counter() - t0
                for severity, amount in lint_report.counts().items():
                    if amount:
                        sp.count(f"findings_{severity}", amount)

        with app_span.child("phase:setup") as sp:
            t0 = time.perf_counter()
            callgraph = build_callgraph(program)

            # Implicit call flows (AsyncTask & friends, §3.4) extend the
            # call graph before slicing so backward/forward propagation
            # crosses them.
            cbinfo = discover_callbacks(program, callgraph)
            if self.config.model_intents:
                from ..semantics.extensions import discover_intent_edges

                discover_intent_edges(program, callgraph)
            event_roots = compute_event_roots(
                program,
                callgraph,
                [ep.method_id for ep in apk.entrypoints],
                cbinfo.boundary_methods,
            )

            # The memoized parallel engine shares one ProgramIndex between
            # both taint directions, the slicer and the signature
            # interpreter; the serial path (workers=1) stays the reference
            # implementation.
            index = ProgramIndex(program, callgraph) if self.config.parallel else None
            sp.count("entrypoints", len(apk.entrypoints))
            sp.count("statements", program.statement_count())
            stats.seconds["setup"] = time.perf_counter() - t0

        # Phase 1 — network-aware program slicing.
        with app_span.child("phase:slicing") as sp:
            t0 = time.perf_counter()
            slicer = NetworkSlicer(
                program,
                callgraph,
                config=TaintConfig(
                    max_async_hops=self.config.max_async_hops,
                    record_provenance=self.config.record_provenance,
                ),
                registry=self.registry,
                event_roots=event_roots,
                linked_returns=cbinfo.linked_returns,
                index=index,
                workers=self.config.workers,
                executor=self.config.executor,
            )
            # The process executor builds one persistent worker pool here
            # (ProgramIndex shipped to each worker exactly once — inherited
            # on fork, pickled once on spawn); release it with the phase.
            try:
                if self.config.mode == "targeted":
                    from ..incr.targeted import TargetedSearch

                    search = TargetedSearch(program, callgraph, self.registry)
                    dps = search.scan()
                    if index is not None:
                        sp.count(
                            "region_methods",
                            index.warm(search.region(dps)),
                        )
                    slicing = slicer.slice_all(span=sp, dps=dps)
                elif self.config.mode == "incremental":
                    slicing = self._slice_incremental(
                        apk, slicer, callgraph, sp,
                        event_roots=event_roots,
                        cbinfo=cbinfo,
                        renames=renames,
                        stats=stats,
                    )
                else:
                    slicing = slicer.slice_all(span=sp)
            finally:
                slicer.close()
            self.last_slicing = slicing
            self._store_manifest(
                apk, callgraph, slicing,
                event_roots=event_roots, cbinfo=cbinfo,
            )
            stats.seconds["slicing"] = time.perf_counter() - t0
            stats.count("demarcation_points", len(slicing.slices))
            for s in slicing.slices:
                for name, amount in s.request.stats.items():
                    stats.count(f"taint_{name}", amount)
                for name, amount in s.response.stats.items():
                    stats.count(f"taint_{name}", amount)

        # Phase 2 — signature extraction over the slices.
        with app_span.child("phase:signatures") as sp:
            t0 = time.perf_counter()
            relevant = None
            if self.config.use_slicing:
                relevant = self._relevant_methods(slicing, callgraph)
            blocked = slicing.missed_async_flows - slicing.sliced_statements

            model = self.model
            if model is None and (self.config.model_intents or self.config.model_sockets):
                from ..semantics.extensions import build_model

                model = build_model(
                    model_intents=self.config.model_intents,
                    model_sockets=self.config.model_sockets,
                )
            interp = SignatureInterpreter(
                program,
                callgraph,
                model=model,
                resources=apk.resources,
                relevant_methods=relevant,
                blocked_field_stores=blocked,
                rounds=self.config.rounds,
                index=index,
            )
            roots = [(ep.method_id, ep.kind.value) for ep in apk.entrypoints]
            result = interp.run(roots, span=sp)
            stats.seconds["signatures"] = time.perf_counter() - t0
            stats.count("methods_evaluated", len(result.evaluated_methods))

        # Phase 3 — transactions + dependencies.
        with app_span.child("phase:dependencies") as sp:
            t0 = time.perf_counter()
            transactions = [from_record(r) for r in result.transactions]
            transactions = self._scope_filter(transactions, program)
            infer_dependencies(transactions, span=sp if sp else None)
            transactions = _dedupe(transactions)
            stats.seconds["dependencies"] = time.perf_counter() - t0
            stats.count("transactions", len(transactions))

        report = AnalysisReport(
            app=apk.name,
            transactions=[t for t in transactions if t.is_identified],
            unidentified=[t for t in transactions if not t.is_identified],
            slice_fraction=slicing.slice_fraction,
            demarcation_points=len(slicing.slices),
            analysis_seconds=time.perf_counter() - started,
            phase_stats=stats,
        )
        report.dependencies = [d for t in report.transactions for d in t.depends_on]
        if self.config.lint_level != "off":
            from ..lint.diagnostics import count_by_severity, sort_findings
            from ..lint.signature import signature_report

            report.lint_findings = sort_findings(
                lint_findings + signature_report(report, slicing)
            )
            for severity, amount in count_by_severity(report.lint_findings).items():
                if amount:
                    stats.count(f"lint_findings_{severity}", amount)
        if app_span:
            app_span.seconds = report.analysis_seconds
            for name, amount in sorted(stats.counters.items()):
                app_span.count(name, amount)
        return report

    # ------------------------------------------------------------- incremental
    def _slice_incremental(
        self, apk, slicer, callgraph, sp, *,
        event_roots, cbinfo, renames, stats,
    ):
        """Phase-1 with manifest reuse: scan fresh, diff fingerprints
        against the stored manifest, re-slice only dirtied demarcation
        points and replay the rest, merged back in scan order."""
        from ..incr.reuse import (
            ReuseIndex,
            _has_renames,
            fingerprints_in_base_namespace,
        )
        from ..slicing.slicer import SlicingReport

        program = apk.program
        # Exactly one scan per callgraph: listener resolution moves sites
        # from library_sites into implicit edges, so a second scan on the
        # same graph would miss callback-style demarcation points.
        dps = slicer.scan()
        manifest = None
        if self.store is not None and not self.config.record_provenance:
            manifest = self.store.get_manifest(apk.name, self.config.cache_key())
        if manifest is None:
            # Cold (or schema/config-guarded) start: everything is dirty.
            report = slicer.slice_all(span=sp, dps=dps)
            stats.incremental = {
                "reused": 0,
                "reanalyzed": len(dps),
                "dirty_methods": sum(1 for _ in program.methods()),
            }
            return report

        # Fingerprints compare in the manifest's (old) namespace: renamed
        # re-releases map back first; otherwise the live post-scan
        # artifacts are the old namespace already.
        if _has_renames(renames):
            new_fp = fingerprints_in_base_namespace(
                apk, self.config, registry=self.registry, renames=renames
            )
        else:
            from ..ir.fingerprint import fingerprint_program

            new_fp, _classes = fingerprint_program(
                program,
                callgraph,
                event_roots=event_roots,
                linked_returns=cbinfo.linked_returns,
                entrypoint_ids=frozenset(
                    ep.method_id for ep in apk.entrypoints
                ),
            )
        plan = ReuseIndex(manifest).plan(
            dps, new_fp, program, callgraph, renames=renames
        )
        dirty_report = slicer.slice_all(span=sp, dps=plan.dirty_dps)
        dirty_by_key = {s.dp.key: s for s in dirty_report.slices}
        stats.incremental = plan.counters
        if sp:
            for name, amount in sorted(plan.counters.items()):
                sp.count(f"incremental_{name}", amount)
        return SlicingReport(
            slices=[
                plan.reused.get(dp.key) or dirty_by_key[dp.key] for dp in dps
            ],
            total_statements=dirty_report.total_statements,
        )

    def _store_manifest(self, apk, callgraph, slicing, *, event_roots, cbinfo):
        """Leave a manifest behind for the next warm run (any mode).
        Skipped without a store (fingerprinting the whole program is not
        free) and under ``record_provenance`` (prov tables don't serialize
        into the slim slices, so replay would drop them)."""
        self.last_manifest = None
        if self.store is None or self.config.record_provenance:
            return
        from ..apk.loader import apk_digest
        from ..incr.manifest import build_manifest

        manifest = build_manifest(
            app=apk.name,
            apk_digest=apk_digest(apk),
            config_key=self.config.cache_key(),
            program=apk.program,
            callgraph=callgraph,
            event_roots=event_roots,
            linked_returns=cbinfo.linked_returns,
            entrypoint_ids=[ep.method_id for ep in apk.entrypoints],
            slicing=slicing,
        )
        self.last_manifest = manifest
        self.store.put_manifest(manifest)

    # ------------------------------------------------------------------ helpers
    def _relevant_methods(self, slicing, callgraph) -> set[str]:
        """Slice methods plus everything that can call into them — the scope
        signature building interprets (the slice-efficiency win of §3.2).

        A worklist BFS over the reverse-edge adjacency: each method is
        expanded once and each caller edge inspected once — O(V + E) instead
        of the previous re-scan-until-fixpoint."""
        slice_methods: set[str] = set()
        for s in slicing.slices:
            slice_methods |= s.methods
        out = set(slice_methods)
        worklist = deque(out)
        while worklist:
            mid = worklist.popleft()
            for caller_id in callgraph.caller_methods_of(mid):
                if caller_id not in out:
                    out.add(caller_id)
                    worklist.append(caller_id)
        return out

    def _scope_filter(
        self, transactions: list[Transaction], program
    ) -> list[Transaction]:
        prefixes = self.config.scope_prefixes
        if not prefixes:
            return transactions
        out = []
        for txn in transactions:
            cls = txn.site.method_id.strip("<").split(":", 1)[0]
            if any(cls.startswith(p) for p in prefixes):
                out.append(txn)
        return out


def _dedupe(transactions: list[Transaction]) -> list[Transaction]:
    """Collapse identical signatures recorded from different contexts,
    remapping dependency edges onto the representatives.

    Merged edges accumulate in a side table instead of being extended onto
    the representative's live ``depends_on`` list: mutating a list that is
    also the source of later merge/remap iterations double-counts edges
    when three or more contexts collapse onto one representative."""
    by_key: dict[tuple, Transaction] = {}
    rep_of: dict[int, int] = {}
    merged_deps: dict[int, list] = {}
    for txn in sorted(transactions, key=lambda t: t.txn_id):
        key = (
            txn.request.method,
            txn.request.uri_regex,
            str(txn.request.body),
            str(txn.response.body),
            # distinct dependency sources keep dynamically derived requests
            # apart (TED's ad video vs talk video are both `GET (.*)`)
            tuple(sorted((d.src_txn, d.src_path) for d in txn.depends_on)),
        )
        rep = by_key.get(key)
        if rep is None:
            by_key[key] = txn
            rep_of[txn.txn_id] = txn.txn_id
            merged_deps[txn.txn_id] = list(txn.depends_on)
        else:
            rep_of[txn.txn_id] = rep.txn_id
            rep.response = replace(
                rep.response,
                consumers=rep.response.consumers | txn.response.consumers,
            )
            merged_deps[rep.txn_id].extend(txn.depends_on)
    final = list(by_key.values())
    for txn in final:
        remapped = []
        seen: set[str] = set()
        for d in merged_deps[txn.txn_id]:
            d = replace(
                d,
                src_txn=rep_of.get(d.src_txn, d.src_txn),
                dst_txn=rep_of.get(d.dst_txn, d.dst_txn),
            )
            if d.src_txn == d.dst_txn:
                continue
            if str(d) not in seen:
                seen.add(str(d))
                remapped.append(d)
        txn.depends_on = remapped
    return final


__all__ = ["Extractocol"]
