"""The analysis report — everything Extractocol outputs for one APK."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..deps.transactions import Dependency, Transaction
from ..signature.lang import Const


@dataclass
class SignatureStats:
    """Counts in the shape of the paper's Table 1 row."""

    get: int = 0
    post: int = 0
    put: int = 0
    delete: int = 0
    query_string: int = 0
    json_body: int = 0
    xml_body: int = 0
    pairs: int = 0

    def as_row(self) -> dict[str, int]:
        return {
            "GET": self.get,
            "POST": self.post,
            "PUT": self.put,
            "DELETE": self.delete,
            "query": self.query_string,
            "json": self.json_body,
            "xml": self.xml_body,
            "pairs": self.pairs,
        }


@dataclass
class AnalysisReport:
    app: str
    transactions: list[Transaction] = field(default_factory=list)
    dependencies: list[Dependency] = field(default_factory=list)
    #: transactions whose signatures are wildcard-only (missed, §5.1)
    unidentified: list[Transaction] = field(default_factory=list)
    #: slicing coverage: fraction of program statements inside slices
    slice_fraction: float = 0.0
    demarcation_points: int = 0
    analysis_seconds: float = 0.0

    # -- derived views ----------------------------------------------------
    def stats(self) -> SignatureStats:
        s = SignatureStats()
        for txn in self.transactions:
            method = txn.request.method
            if method == "GET":
                s.get += 1
            elif method == "POST":
                s.post += 1
            elif method == "PUT":
                s.put += 1
            elif method == "DELETE":
                s.delete += 1
            kind = txn.request.body_kind
            if kind == "query":
                s.query_string += 1
            if kind == "json" or txn.response.kind == "json":
                s.json_body += 1
            if kind == "xml" or txn.response.kind == "xml":
                s.xml_body += 1
            if txn.has_pair:
                s.pairs += 1
        return s

    def request_signatures(self) -> list[str]:
        return [f"{t.request.method} {t.request.uri_regex}" for t in self.transactions]

    def unique_uri_signatures(self) -> set[str]:
        return {t.request.uri_regex for t in self.transactions}

    def unique_request_body_signatures(self) -> set[str]:
        """Unique request body/query-string signatures, keyed per endpoint
        (two endpoints with structurally identical bodies are still two
        signatures, as in Table 1's per-message counting)."""
        out = set()
        for t in self.transactions:
            if t.request.body is not None:
                out.add(f"{t.request.uri_regex}::{t.request.body}")
        return out

    def unique_response_body_signatures(self) -> set[str]:
        return {
            f"{t.request.uri_regex}::{t.response.body}"
            for t in self.transactions
            if t.response.has_body
        }

    def keywords(self) -> Counter:
        """Constant keywords across all signatures (Figure 7's unit)."""
        out: Counter = Counter()
        for t in self.transactions:
            for kw in t.request.keywords:
                out[("request", kw)] += 1
            for kw in t.response.keywords:
                out[("response", kw)] += 1
        return out

    def transaction(self, txn_id: int) -> Transaction:
        for t in self.transactions:
            if t.txn_id == txn_id:
                return t
        raise KeyError(txn_id)

    def consumers(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        for t in self.transactions:
            for c in t.response.consumers:
                out.setdefault(c, []).append(t.txn_id)
        return out

    def summary(self) -> str:
        s = self.stats()
        lines = [
            f"app: {self.app}",
            f"transactions: {len(self.transactions)} "
            f"(GET {s.get} / POST {s.post} / PUT {s.put} / DELETE {s.delete})",
            f"request-response pairs: {s.pairs}",
            f"dependencies: {len(self.dependencies)}",
            f"unidentified (wildcard-only): {len(self.unidentified)}",
            f"slice fraction: {self.slice_fraction:.1%}",
            f"demarcation points: {self.demarcation_points}",
        ]
        return "\n".join(lines)


__all__ = ["AnalysisReport", "SignatureStats"]
