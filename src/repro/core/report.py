"""The analysis report — everything Extractocol outputs for one APK.

Besides the live :class:`AnalysisReport` the pipeline produces, this module
owns the canonical JSON-serialisable form: :func:`report_to_dict` flattens a
report (live or deserialised) into plain dicts/strings, and
:func:`report_from_dict` rebuilds a report view from that form.  The two are
exact inverses over the dict form — ``report_to_dict(report_from_dict(d))
== d`` — which is what lets the service result store hand back cached
reports byte-identical to a fresh run (`repro.service.store`).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

from ..deps.transactions import Dependency, Transaction
from ..obs.phases import PhaseStats
from ..signature.lang import Const


@dataclass
class SignatureStats:
    """Counts in the shape of the paper's Table 1 row."""

    get: int = 0
    post: int = 0
    put: int = 0
    delete: int = 0
    query_string: int = 0
    json_body: int = 0
    xml_body: int = 0
    pairs: int = 0

    def as_row(self) -> dict[str, int]:
        return {
            "GET": self.get,
            "POST": self.post,
            "PUT": self.put,
            "DELETE": self.delete,
            "query": self.query_string,
            "json": self.json_body,
            "xml": self.xml_body,
            "pairs": self.pairs,
        }


@dataclass
class AnalysisReport:
    app: str
    transactions: list[Transaction] = field(default_factory=list)
    dependencies: list[Dependency] = field(default_factory=list)
    #: transactions whose signatures are wildcard-only (missed, §5.1)
    unidentified: list[Transaction] = field(default_factory=list)
    #: slicing coverage: fraction of program statements inside slices
    slice_fraction: float = 0.0
    demarcation_points: int = 0
    analysis_seconds: float = 0.0
    #: per-phase timing/counter profile (``repro.obs``); like
    #: ``analysis_seconds`` it is run-specific, so the default
    #: serialisation omits it (``include_phase_stats`` opts in)
    phase_stats: PhaseStats | None = None
    #: lint findings (``repro.lint`` Diagnostic list) attached when the
    #: analysis ran with ``AnalysisConfig.lint_level != "off"``; empty
    #: means "lint ran clean" *or* "lint never ran" — the serialised form
    #: is identical either way (the ``lint`` key appears only when
    #: findings exist, keeping lint-off reports byte-identical)
    lint_findings: list = field(default_factory=list)

    # -- derived views ----------------------------------------------------
    def stats(self) -> SignatureStats:
        s = SignatureStats()
        for txn in self.transactions:
            method = txn.request.method
            if method == "GET":
                s.get += 1
            elif method == "POST":
                s.post += 1
            elif method == "PUT":
                s.put += 1
            elif method == "DELETE":
                s.delete += 1
            kind = txn.request.body_kind
            if kind == "query":
                s.query_string += 1
            if kind == "json" or txn.response.kind == "json":
                s.json_body += 1
            if kind == "xml" or txn.response.kind == "xml":
                s.xml_body += 1
            if txn.has_pair:
                s.pairs += 1
        return s

    def request_signatures(self) -> list[str]:
        return [f"{t.request.method} {t.request.uri_regex}" for t in self.transactions]

    def unique_uri_signatures(self) -> set[str]:
        return {t.request.uri_regex for t in self.transactions}

    def unique_request_body_signatures(self) -> set[str]:
        """Unique request body/query-string signatures, keyed per endpoint
        (two endpoints with structurally identical bodies are still two
        signatures, as in Table 1's per-message counting)."""
        out = set()
        for t in self.transactions:
            if t.request.body is not None:
                out.add(f"{t.request.uri_regex}::{t.request.body}")
        return out

    def unique_response_body_signatures(self) -> set[str]:
        return {
            f"{t.request.uri_regex}::{t.response.body}"
            for t in self.transactions
            if t.response.has_body
        }

    def keywords(self) -> Counter:
        """Constant keywords across all signatures (Figure 7's unit)."""
        out: Counter = Counter()
        for t in self.transactions:
            for kw in t.request.keywords:
                out[("request", kw)] += 1
            for kw in t.response.keywords:
                out[("response", kw)] += 1
        return out

    def transaction(self, txn_id: int) -> Transaction:
        for t in self.transactions:
            if t.txn_id == txn_id:
                return t
        raise KeyError(txn_id)

    def consumers(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        for t in self.transactions:
            for c in t.response.consumers:
                out.setdefault(c, []).append(t.txn_id)
        return out

    def summary(self) -> str:
        s = self.stats()
        lines = [
            f"app: {self.app}",
            f"transactions: {len(self.transactions)} "
            f"(GET {s.get} / POST {s.post} / PUT {s.put} / DELETE {s.delete})",
            f"request-response pairs: {s.pairs}",
            f"dependencies: {len(self.dependencies)}",
            f"unidentified (wildcard-only): {len(self.unidentified)}",
            f"slice fraction: {self.slice_fraction:.1%}",
            f"demarcation points: {self.demarcation_points}",
        ]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Serialisation: the canonical dict form of a report.
#
# The dict form deliberately flattens signature Terms to their string/regex
# renderings — it is a *protocol description*, not a pickle of the analysis
# internals.  Deserialising therefore yields frozen signature views that
# carry the rendered strings; everything the report API derives from them
# (stats, summaries, consumer maps) still works.


@dataclass(frozen=True)
class FrozenRequestSig:
    """A request signature reconstituted from the serialised form: same
    read API as :class:`~repro.deps.transactions.RequestSig`, but with the
    rendered strings as ground truth instead of signature Terms."""

    method: str
    uri_regex: str
    headers: tuple[tuple[str, str], ...] = ()
    body: str | None = None
    body_kind: str | None = None
    is_dynamic: bool = False


@dataclass(frozen=True)
class FrozenResponseSig:
    kind: str
    body: str | None = None
    consumers: frozenset[str] = frozenset()

    @property
    def has_body(self) -> bool:
        return self.body is not None


@dataclass
class FrozenTransaction:
    txn_id: int
    request: FrozenRequestSig
    response: FrozenResponseSig
    depends_on: list[Dependency] = field(default_factory=list)

    @property
    def has_pair(self) -> bool:
        return self.response.has_body

    def describe(self) -> str:
        lines = [f"{self.request.method} {self.request.uri_regex}"]
        for name, value in self.request.headers:
            lines.append(f"  {name}: {value}")
        if self.request.body is not None:
            lines.append(f"  body[{self.request.body_kind}]: {self.request.body}")
        if self.response.has_body:
            lines.append(f"  -> response[{self.response.kind}]: {self.response.body}")
        for c in sorted(self.response.consumers):
            lines.append(f"  -> consumed by: {c}")
        for d in self.depends_on:
            lines.append(f"  <- {d}")
        return "\n".join(lines)


def _txn_to_dict(txn) -> dict:
    return {
        "id": txn.txn_id,
        "method": txn.request.method,
        "uri_regex": txn.request.uri_regex,
        "headers": {k: str(v) for k, v in txn.request.headers},
        "body": str(txn.request.body) if txn.request.body is not None else None,
        "body_kind": txn.request.body_kind,
        "response_kind": txn.response.kind,
        "response_body": (
            str(txn.response.body) if txn.response.body is not None else None
        ),
        "consumers": sorted(txn.response.consumers),
        "depends_on": [str(d) for d in txn.depends_on],
        "dynamic_uri": txn.request.is_dynamic,
    }


def report_to_dict(report, *, include_phase_stats: bool = False) -> dict:
    """JSON-serialisable view of an :class:`AnalysisReport` (live or one
    rebuilt by :func:`report_from_dict`).  Timing is intentionally omitted
    so two runs over the same APK/config serialise identically;
    ``include_phase_stats`` opts the run-specific phase profile back in
    (the exact-round-trip contract then only holds per run)."""
    out = {
        "app": report.app,
        "stats": report.stats().as_row(),
        "slice_fraction": report.slice_fraction,
        "demarcation_points": report.demarcation_points,
        "transactions": [_txn_to_dict(t) for t in report.transactions],
        "unidentified": [_txn_to_dict(t) for t in report.unidentified],
    }
    if include_phase_stats and report.phase_stats is not None:
        out["phase_stats"] = report.phase_stats.to_dict()
    if report.lint_findings:
        out["lint"] = [f.to_dict() for f in report.lint_findings]
    return out


_DEP_RE = re.compile(r"^txn(\d+)\[(.*)\] -> txn(\d+)\.(.*)$", re.DOTALL)


def _dep_from_str(text: str) -> Dependency:
    m = _DEP_RE.match(text)
    if m is None:
        raise ValueError(f"malformed dependency string: {text!r}")
    return Dependency(
        src_txn=int(m.group(1)),
        src_path=m.group(2),
        dst_txn=int(m.group(3)),
        dst_field=m.group(4),
    )


def _txn_from_dict(data: dict) -> FrozenTransaction:
    return FrozenTransaction(
        txn_id=data["id"],
        request=FrozenRequestSig(
            method=data["method"],
            uri_regex=data["uri_regex"],
            headers=tuple(data.get("headers", {}).items()),
            body=data.get("body"),
            body_kind=data.get("body_kind"),
            is_dynamic=data.get("dynamic_uri", False),
        ),
        response=FrozenResponseSig(
            kind=data.get("response_kind", "unknown"),
            body=data.get("response_body"),
            consumers=frozenset(data.get("consumers", ())),
        ),
        depends_on=[_dep_from_str(d) for d in data.get("depends_on", ())],
    )


def report_from_dict(data: dict) -> AnalysisReport:
    """Rebuild a report from :func:`report_to_dict` output.

    The result carries :class:`FrozenTransaction` views (rendered strings,
    not signature Terms), so derived views — ``stats()``, ``summary()``,
    ``consumers()``, ``transaction()`` — all work, and serialising it again
    reproduces ``data`` exactly."""
    report = AnalysisReport(
        app=data["app"],
        transactions=[_txn_from_dict(t) for t in data.get("transactions", ())],
        unidentified=[_txn_from_dict(t) for t in data.get("unidentified", ())],
        slice_fraction=data.get("slice_fraction", 0.0),
        demarcation_points=data.get("demarcation_points", 0),
    )
    if "phase_stats" in data:
        report.phase_stats = PhaseStats.from_dict(data["phase_stats"])
    if "lint" in data:
        from ..lint.diagnostics import Diagnostic

        report.lint_findings = [Diagnostic.from_dict(f) for f in data["lint"]]
    report.dependencies = [d for t in report.transactions for d in t.depends_on]
    return report


__all__ = [
    "AnalysisReport",
    "FrozenRequestSig",
    "FrozenResponseSig",
    "FrozenTransaction",
    "SignatureStats",
    "report_from_dict",
    "report_to_dict",
]
