"""Fleet-wide protocol intelligence: a cross-app inverted index over the
ResultStore, query grammar + similarity search, and an MCP-style catalog
server.  See ``docs`` (term extraction), ``index`` (segment tree +
pending-delta protocol), ``query`` (grammar/pagination) and ``mcp``
(stdio JSON-RPC)."""

from .docs import (
    SUMMARY_SCHEMA,
    doc_from_envelope,
    envelope_summary,
    extract_doc,
    report_summary,
    signature_label,
)
from .index import (
    INDEX_SCHEMA,
    FleetIndex,
    build_index,
    index_root,
    write_pending_delta,
)
from .query import (
    QueryError,
    catalog,
    decode_cursor,
    encode_cursor,
    paginate,
    parse_query,
    run_search,
)

__all__ = [
    "FleetIndex",
    "INDEX_SCHEMA",
    "QueryError",
    "SUMMARY_SCHEMA",
    "build_index",
    "catalog",
    "decode_cursor",
    "doc_from_envelope",
    "encode_cursor",
    "envelope_summary",
    "extract_doc",
    "index_root",
    "paginate",
    "parse_query",
    "report_summary",
    "run_search",
    "signature_label",
    "write_pending_delta",
]
