"""Fleet query grammar and execution.

Grammar — whitespace-separated clauses, AND-ed together::

    host:api.example.com      exact host
    path:login                one literal path segment
    path:/api/v1/login        the whole normalised path
    field:modhash             dependency field (uri | body | header:<name>
                              | bare header name | source JSON-path tail)
    app:reddinator            restrict to one app
    like:<app>/<txn>          similarity: endpoints whose signature shares
                              character shingles with that transaction
                              (<app> may also be a result-key prefix)
    <word>                    free text over methods, hosts, paths, query
                              keys, body/response keys and consumer names

Results are transactions — ``(app, result key, txn id, label)`` — in a
deterministic total order: similarity score (when a ``like:`` clause is
present) descending, then app, key, txn id.  Pagination is cursor-based:
the opaque cursor encodes the last hit's sort tuple, so pages are stable
under concurrent writes (new hits sort in, old cursors stay valid).
"""

from __future__ import annotations

import base64
import binascii
import json
import re

from ..obs.tracer import NULL_TRACER
from .docs import signature_grams
from .index import FleetIndex, Posting

DEFAULT_LIMIT = 50
MAX_LIMIT = 500


class QueryError(ValueError):
    """A malformed query string (bad clause, unresolvable like: ref)."""


# ------------------------------------------------------------------ grammar
def parse_query(text: str) -> list[tuple[str, ...]]:
    """Parse a query string into ``(kind, ...)`` clause tuples."""
    clauses: list[tuple[str, ...]] = []
    for raw in text.split():
        prefix, sep, value = raw.partition(":")
        if sep and prefix in ("host", "path", "field") and value:
            clauses.append(("term", f"{prefix}:{value.lower()}"))
        elif sep and prefix == "app" and value:
            clauses.append(("app", value))
        elif sep and prefix == "like":
            ref, slash, txn = value.rpartition("/")
            if not slash or not txn.isdigit():
                raise QueryError(
                    f"like: clause needs <app>/<txn-id>, got {raw!r}"
                )
            clauses.append(("like", ref, int(txn)))
        elif sep and prefix in ("host", "path", "field", "app", "like"):
            raise QueryError(f"empty {prefix}: clause in {raw!r}")
        else:
            clauses.append(("term", f"text:{raw.lower()}"))
    if not clauses:
        raise QueryError("empty query")
    return clauses


def normalize_query(clauses: list[tuple[str, ...]]) -> str:
    """The canonical rendering of a parsed query (for spans/metrics)."""
    out = []
    for clause in clauses:
        if clause[0] == "term":
            out.append(clause[1])
        elif clause[0] == "app":
            out.append(f"app:{clause[1]}")
        else:
            out.append(f"like:{clause[1]}/{clause[2]}")
    return " ".join(out)


# ------------------------------------------------------------------ cursors
def encode_cursor(parts: list) -> str:
    raw = json.dumps(parts, separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_cursor(text: str | None) -> list | None:
    """Decode an opaque cursor; ``None`` (or garbage) means first page."""
    if not text:
        return None
    try:
        parts = json.loads(base64.urlsafe_b64decode(text.encode("ascii")))
    except (ValueError, binascii.Error):
        return None
    return parts if isinstance(parts, list) else None


def paginate(items: list, *, limit: int | None, cursor: str | None,
             sort_key) -> tuple[list, str | None]:
    """One page of an already-sorted item list.

    ``sort_key(item)`` must return the JSON-safe tuple the list is sorted
    by; the returned cursor encodes the last emitted item's key.  Shared
    by ``/reports``, ``/search`` and ``/catalog``.
    """
    limit = max(1, min(int(limit or DEFAULT_LIMIT), MAX_LIMIT))
    after = decode_cursor(cursor)
    if after is not None:
        items = [item for item in items if list(sort_key(item)) > after]
    page = items[:limit]
    next_cursor = (
        encode_cursor(list(sort_key(page[-1])))
        if len(items) > limit and page
        else None
    )
    return page, next_cursor


# ---------------------------------------------------------------- execution
_APP_NORM_RE = re.compile(r"[^a-z0-9]+")


def _norm_app(name: str) -> str:
    """App names for like: matching: lowercase alphanumerics only, so
    ``reddinator``/``Reddinator`` and space-carrying display names all
    resolve from a clause that cannot itself contain whitespace."""
    return _APP_NORM_RE.sub("", name.lower())


def _resolve_like(index: FleetIndex, ref: str, txn_id: int) -> tuple[str, str]:
    """Resolve a ``like:<app>/<txn>`` reference to ``(key, label)``.

    ``<app>`` may be an app name (matched case/punctuation-insensitively;
    the lexicographically last stored key wins, deterministically) or a
    result-key prefix.
    """
    if ref in index.docs:
        keys = [ref]
    else:
        want = _norm_app(ref)
        keys = sorted(
            key for key, doc in index.docs.items()
            if doc.get("app") == ref
            or key.startswith(ref)
            or (want and _norm_app(doc.get("app", "")) == want)
        )
    if not keys:
        raise QueryError(f"like: reference {ref!r} matches no indexed app")
    key = keys[-1]
    label = index.label(key, txn_id)
    if not label:
        raise QueryError(
            f"like: app {ref!r} ({key[:12]}…) has no transaction {txn_id}"
        )
    return key, label


def _like_scores(index: FleetIndex, ref_key: str, ref_txn: int,
                 label: str) -> dict[Posting, float]:
    """Containment similarity of every indexed transaction against the
    reference signature's shingle set (reference itself excluded)."""
    grams = signature_grams(label)
    if not grams:
        return {}
    overlap: dict[Posting, int] = {}
    for gram in grams:
        for posting in index.lookup(f"gram:{gram}"):
            overlap[posting] = overlap.get(posting, 0) + 1
    overlap.pop(
        (index.docs.get(ref_key, {}).get("app", ""), ref_key, ref_txn), None
    )
    return {
        posting: round(count / len(grams), 4)
        for posting, count in overlap.items()
    }


#: Endpoints whose signature shares fewer than this fraction of shingles
#: with the like: reference are noise, not neighbours.
LIKE_THRESHOLD = 0.30


def run_search(
    index: FleetIndex,
    query: str,
    *,
    limit: int | None = None,
    cursor: str | None = None,
    tracer=NULL_TRACER,
) -> dict:
    """Execute one query against a loaded index; returns the result page.

    The result dict carries ``query`` (normalised), ``total`` (matches
    across all pages), ``apps`` (every matching app), ``hits`` (the page)
    and ``next_cursor``.  Deterministic for a given index + query +
    cursor — identical across rebuilt/folded/thread/process indexes.
    """
    clauses = parse_query(query)
    normalized = normalize_query(clauses)
    span = tracer.span(f"search:{normalized}")
    with span:
        candidates: set[Posting] | None = None
        scores: dict[Posting, float] | None = None
        for clause in clauses:
            if clause[0] == "term":
                matched = index.lookup(clause[1])
            elif clause[0] == "app":
                matched = {
                    (doc["app"], key, int(txn_id))
                    for key, doc in index.docs.items()
                    if doc.get("app") == clause[1]
                    for txn_id in doc.get("txns", {})
                }
            else:
                ref_key, label = _resolve_like(index, clause[1], clause[2])
                clause_scores = {
                    posting: score
                    for posting, score in _like_scores(
                        index, ref_key, clause[2], label
                    ).items()
                    if score >= LIKE_THRESHOLD
                }
                scores = clause_scores if scores is None else {
                    posting: round(
                        (scores[posting] + clause_scores[posting]) / 2, 4
                    )
                    for posting in scores.keys() & clause_scores.keys()
                }
                matched = set((scores or {}).keys())
            candidates = (
                set(matched) if candidates is None else candidates & matched
            )
            if not candidates:
                break

        hits = []
        for app, key, txn in candidates or ():
            hit = {
                "app": app,
                "key": key,
                "txn": txn,
                "label": index.label(key, txn),
            }
            if scores is not None:
                hit["score"] = scores.get((app, key, txn), 0.0)
            hits.append(hit)

        if scores is not None:
            def sort_key(hit):
                return [-hit["score"], hit["app"], hit["key"], hit["txn"]]
        else:
            def sort_key(hit):
                return [hit["app"], hit["key"], hit["txn"]]

        hits.sort(key=sort_key)
        apps = sorted({hit["app"] for hit in hits})
        page, next_cursor = paginate(
            hits, limit=limit, cursor=cursor, sort_key=sort_key
        )
        span.count("clauses", len(clauses))
        span.count("matches", len(hits))
        span.count("returned", len(page))
    return {
        "query": normalized,
        "total": len(hits),
        "apps": apps,
        "hits": page,
        "next_cursor": next_cursor,
    }


def catalog(index: FleetIndex, *, limit: int | None = None,
            cursor: str | None = None) -> dict:
    """The paginated app catalog: per-app keys, hosts and summary counts,
    sorted by app name."""
    apps = sorted(index.apps().values(), key=lambda e: e["app"])
    page, next_cursor = paginate(
        apps, limit=limit, cursor=cursor, sort_key=lambda e: [e["app"]]
    )
    return {
        "total": len(apps),
        "apps": page,
        "next_cursor": next_cursor,
        "stats": index.stats(),
    }


__all__ = [
    "DEFAULT_LIMIT",
    "LIKE_THRESHOLD",
    "MAX_LIMIT",
    "QueryError",
    "catalog",
    "decode_cursor",
    "encode_cursor",
    "normalize_query",
    "paginate",
    "parse_query",
    "run_search",
]
