"""MCP-style catalog server: the fleet index over stdio JSON-RPC.

``repro mcp`` speaks newline-delimited JSON-RPC 2.0 on stdin/stdout with
the Model Context Protocol tool shape, so agent runtimes can browse the
fleet without linking against this package:

* ``list_collections`` — the app catalog (one collection per analysed
  app: result keys, hosts, endpoint/dependency counts), paginated.
* ``search`` — the full ``repro search`` grammar (``host:``, ``path:``,
  ``field:``, ``app:``, ``like:<app>/<txn>``, free text) with
  ``limit``/``cursor`` pagination.
* ``get_file`` — one stored report envelope, by result key or app name
  (lexicographically last key wins, deterministically).

The server is deliberately dumb transport: :class:`McpCatalogServer.handle`
is a pure request-dict → response-dict function (tested without pipes),
and :func:`serve` is the only loop.  The index is refreshed before every
tool call, so results include envelopes written after startup (the
pending-delta overlay keeps that cheap).
"""

from __future__ import annotations

import json
import sys

from .index import FleetIndex
from .query import QueryError, catalog, run_search

PROTOCOL_VERSION = "2025-03-26"
SERVER_INFO = {"name": "repro-fleet-catalog", "version": "1.0"}

_PAGING_PROPS = {
    "limit": {"type": "integer", "description": "Page size (default 50)."},
    "cursor": {
        "type": "string",
        "description": "Opaque cursor from a previous page's next_cursor.",
    },
}

TOOLS = [
    {
        "name": "list_collections",
        "description": (
            "List analysed apps in the fleet store: result keys, hosts, "
            "endpoint and dependency counts per app."
        ),
        "inputSchema": {
            "type": "object",
            "properties": dict(_PAGING_PROPS),
        },
    },
    {
        "name": "search",
        "description": (
            "Search the fleet's protocol behavior. Query grammar: "
            "host:<host>, path:<segment|/full/path>, field:<dep-field>, "
            "app:<app>, like:<app>/<txn-id>, free text; clauses AND."
        ),
        "inputSchema": {
            "type": "object",
            "properties": {
                "query": {"type": "string", "description": "Query string."},
                **_PAGING_PROPS,
            },
            "required": ["query"],
        },
    },
    {
        "name": "get_file",
        "description": (
            "Fetch one stored report envelope by result key, or an app "
            "name (its most recent result)."
        ),
        "inputSchema": {
            "type": "object",
            "properties": {
                "key": {"type": "string", "description": "Result key."},
                "app": {"type": "string", "description": "App name."},
            },
        },
    },
]


class McpCatalogServer:
    """Pure request handling for the catalog server.

    ``handle`` maps one JSON-RPC request dict to a response dict, or
    ``None`` for notifications (which get no reply).  Transport errors
    (unparseable lines) are the caller's problem — see :func:`serve`.
    """

    def __init__(self, store) -> None:
        self.store = store
        self.index = FleetIndex(store)

    # ----------------------------------------------------------- tool calls
    def _tool_result(self, payload: dict) -> dict:
        return {
            "content": [
                {"type": "text", "text": json.dumps(payload, sort_keys=True)}
            ],
            "isError": False,
        }

    def _tool_error(self, message: str) -> dict:
        return {
            "content": [{"type": "text", "text": message}],
            "isError": True,
        }

    def _call(self, name: str, arguments: dict) -> dict:
        self.index.refresh()
        if name == "list_collections":
            return self._tool_result(
                catalog(
                    self.index,
                    limit=arguments.get("limit"),
                    cursor=arguments.get("cursor"),
                )
            )
        if name == "search":
            query = arguments.get("query", "")
            try:
                return self._tool_result(
                    run_search(
                        self.index,
                        query,
                        limit=arguments.get("limit"),
                        cursor=arguments.get("cursor"),
                    )
                )
            except QueryError as exc:
                return self._tool_error(f"bad query: {exc}")
        if name == "get_file":
            key = arguments.get("key")
            if not key and arguments.get("app"):
                keys = sorted(
                    k for k, doc in self.index.docs.items()
                    if doc.get("app") == arguments["app"]
                )
                key = keys[-1] if keys else None
            envelope = self.store.load(key) if key else None
            if envelope is None:
                return self._tool_error(
                    f"no stored result for {arguments.get('key') or arguments.get('app')!r}"
                )
            return self._tool_result(envelope)
        return self._tool_error(f"unknown tool {name!r}")

    # -------------------------------------------------------------- JSON-RPC
    def handle(self, request: dict) -> dict | None:
        """One JSON-RPC request → response dict (``None`` = notification)."""
        method = request.get("method", "")
        req_id = request.get("id")
        if req_id is None:
            return None  # notification (e.g. notifications/initialized)

        def ok(result: dict) -> dict:
            return {"jsonrpc": "2.0", "id": req_id, "result": result}

        def err(code: int, message: str) -> dict:
            return {
                "jsonrpc": "2.0",
                "id": req_id,
                "error": {"code": code, "message": message},
            }

        if method == "initialize":
            return ok({
                "protocolVersion": PROTOCOL_VERSION,
                "serverInfo": SERVER_INFO,
                "capabilities": {"tools": {}},
            })
        if method == "ping":
            return ok({})
        if method == "tools/list":
            return ok({"tools": TOOLS})
        if method == "tools/call":
            params = request.get("params") or {}
            name = params.get("name", "")
            arguments = params.get("arguments") or {}
            try:
                return ok(self._call(name, arguments))
            except Exception as exc:  # tool bugs become protocol errors
                return err(-32603, f"{type(exc).__name__}: {exc}")
        return err(-32601, f"method not found: {method}")


def serve(store, stdin=None, stdout=None) -> int:
    """The stdio loop: one JSON-RPC message per line until EOF."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = McpCatalogServer(store)
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            response = {
                "jsonrpc": "2.0",
                "id": None,
                "error": {"code": -32700, "message": "parse error"},
            }
        else:
            response = server.handle(request)
        if response is not None:
            stdout.write(json.dumps(response, sort_keys=True) + "\n")
            stdout.flush()
    return 0


__all__ = ["McpCatalogServer", "PROTOCOL_VERSION", "TOOLS", "serve"]
