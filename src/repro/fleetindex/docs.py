"""Index documents: what one stored report contributes to the fleet index.

The indexable unit is a *transaction* inside a stored report envelope —
``(result key, txn id)`` — because that is the granularity fleet questions
arrive at ("which endpoints carry a ``modhash``-style dependency", "find
an endpoint like this one").  :func:`extract_doc` turns one envelope's
report dict into a flat, JSON-safe document: per-transaction term lists
for the inverted index plus a display label, and the compact
:func:`report_summary` block the store also stamps into new envelopes at
``put`` time.

Everything here is a pure function of the canonical report dict
(:func:`repro.core.report.report_to_dict` output), so a document computed
at ``put`` time (the pending-delta path) is byte-identical to one
computed during a full rebuild from the stored envelope — which is what
makes incremental fold-in reproduce a full rebuild exactly.

Term namespaces::

    host:<host>            lowercased literal host (wildcards -> ``*``)
    path:<segment>         every literal path segment, lowercased
    path:</full/path>      the whole normalised path
    field:<name>           dependency fields: the destination field
                           (``uri`` | ``body`` | ``header:<name>``, plus
                           the bare header name) and the source JSON
                           path's trailing identifier (``$.modhash`` ->
                           ``modhash``) — posted on *both* endpoints of
                           the edge, so one query finds feeders and
                           consumers
    text:<token>           free-text tokens from method, host, path,
                           query keys, body/response keys and consumers
    gram:<shingle>         character 4-gram shingles of the normalised
                           ``METHOD uri`` signature (similarity search)
"""

from __future__ import annotations

import re

from ..core.report import _dep_from_str
from ..diff.normal import WILDCARD, body_keys, parse_uri, untokenize

#: Bump when the summary block's layout changes; readers treat a
#: mismatched summary as absent and recompute from the report payload.
SUMMARY_SCHEMA = 1

#: Character shingle width for similarity grams.
GRAM_WIDTH = 4

_TOKEN_RE = re.compile(r"[a-z0-9_]+")
_TAIL_RE = re.compile(r"[A-Za-z0-9_]+")


def _clean(text: str) -> str:
    """Collapsed-wildcard sentinel -> a printable ``*``."""
    return text.replace(WILDCARD, "*")


def _dep_fields(dep_str: str) -> set[str]:
    """The queryable field names of one dependency edge string."""
    try:
        dep = _dep_from_str(dep_str)
    except ValueError:
        return set()
    fields = {dep.dst_field.lower()}
    if dep.dst_field.startswith("header:"):
        fields.add(dep.dst_field[len("header:"):].lower())
    tail = _TAIL_RE.findall(dep.src_path)
    if tail:
        fields.add(tail[-1].lower())
    return {f for f in fields if f}


def signature_label(txn: dict) -> str:
    """The human-readable, literal form of one transaction's request
    signature: ``METHOD`` plus the untokenised URI with wildcards shown
    as ``*``.  Doubles as the gram source for similarity search."""
    return f"{txn.get('method', '?')} {_clean(untokenize(txn.get('uri_regex', '')))}"


def signature_grams(label: str) -> set[str]:
    """Character shingles of a normalised signature label."""
    text = label.lower()
    if len(text) <= GRAM_WIDTH:
        return {text} if text else set()
    return {text[i:i + GRAM_WIDTH] for i in range(len(text) - GRAM_WIDTH + 1)}


def txn_terms(txn: dict) -> list[str]:
    """The sorted, deduplicated term list of one transaction dict."""
    terms: set[str] = set()
    text: set[str] = set()

    uri = parse_uri(txn.get("uri_regex", ""))
    host = _clean(uri.host).lower()
    if host and host != "*":
        terms.add(f"host:{host}")
        text.update(_TOKEN_RE.findall(host))

    segments = [_clean(s).lower() for s in uri.segments]
    literal = [s for s in segments if s and s != "*"]
    for seg in literal:
        terms.add(f"path:{seg}")
        text.update(_TOKEN_RE.findall(seg))
    if literal:
        terms.add("path:/" + "/".join(segments))

    for key in uri.query_keys:
        text.add(key.lower())

    text.add(txn.get("method", "").lower())
    for name, _value in (txn.get("headers") or {}).items():
        text.update(_TOKEN_RE.findall(name.lower()))
    for key in body_keys(txn.get("body"), txn.get("body_kind")):
        text.update(_TOKEN_RE.findall(key.lower()))
    for key in body_keys(txn.get("response_body"), txn.get("response_kind")):
        text.update(_TOKEN_RE.findall(key.lower()))
    for consumer in txn.get("consumers", ()):
        text.update(_TOKEN_RE.findall(consumer.lower()))

    for dep_str in txn.get("depends_on", ()):
        for field in _dep_fields(dep_str):
            terms.add(f"field:{field}")

    terms.update(f"text:{tok}" for tok in text if tok)
    terms.update(f"gram:{g}" for g in signature_grams(signature_label(txn)))
    return sorted(terms)


def report_summary(report: dict) -> dict:
    """The compact, queryable summary the store stamps into envelopes.

    Everything the catalog and a host-level query need without
    deserialising the full report: hosts, endpoint/transaction counts and
    the dependency-field vocabulary.
    """
    hosts: set[str] = set()
    endpoints: set[tuple[str, str]] = set()
    dep_fields: set[str] = set()
    dependencies = 0
    txns = report.get("transactions", ())
    for txn in txns:
        uri = parse_uri(txn.get("uri_regex", ""))
        host = _clean(uri.host).lower()
        if host and host != "*":
            hosts.add(host)
        endpoints.add((txn.get("method", "?"), txn.get("uri_regex", "")))
        deps = txn.get("depends_on", ())
        dependencies += len(deps)
        for dep_str in deps:
            dep_fields.update(_dep_fields(dep_str))
    return {
        "schema": SUMMARY_SCHEMA,
        "hosts": sorted(hosts),
        "endpoints": len(endpoints),
        "transactions": len(txns),
        "unidentified": len(report.get("unidentified", ())),
        "dependencies": dependencies,
        "dependency_fields": sorted(dep_fields),
    }


def envelope_summary(envelope: dict) -> dict | None:
    """The summary block of a stored envelope, recomputing it from the
    report payload when absent or written under another summary schema
    (the backfill path for pre-summary stores)."""
    summary = envelope.get("summary")
    if isinstance(summary, dict) and summary.get("schema") == SUMMARY_SCHEMA:
        return summary
    report = envelope.get("report")
    if not isinstance(report, dict):
        return None
    return report_summary(report)


def extract_doc(key: str, app: str, report: dict) -> dict:
    """One envelope's full index document.

    ``txns`` carries, per transaction, the display label and the sorted
    term list; ``summary`` is the same block :func:`report_summary`
    computes.  Unidentified (wildcard-only) transactions are not
    indexed — they have no literal structure to post.
    """
    return {
        "key": key,
        "app": app,
        "summary": report_summary(report),
        "txns": [
            {
                "id": txn["id"],
                "label": signature_label(txn),
                "terms": txn_terms(txn),
            }
            for txn in report.get("transactions", ())
        ],
    }


def doc_from_envelope(envelope: dict) -> dict | None:
    """:func:`extract_doc` over a stored envelope; ``None`` for
    non-report envelopes (diff caches, manifests)."""
    report = envelope.get("report")
    key = envelope.get("key")
    if not isinstance(report, dict) or not key:
        return None
    return extract_doc(key, envelope.get("app", ""), report)


__all__ = [
    "GRAM_WIDTH",
    "SUMMARY_SCHEMA",
    "doc_from_envelope",
    "envelope_summary",
    "extract_doc",
    "report_summary",
    "signature_grams",
    "signature_label",
    "txn_terms",
]
