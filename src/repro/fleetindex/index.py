"""The on-disk inverted index: segments, manifest, pending deltas.

Layout — a side-band ``index/`` tree inside the result store, invisible
to report listings exactly like the ``manifests/`` tree::

    <store>/index/MANIFEST.json        schema, segment ids, stats
    <store>/index/segments/<sha>.json  term -> postings, sharded by term
    <store>/index/docs/<sha>.json      doc registry (key -> app/summary/labels)
    <store>/index/pending/<key>.json   one delta per un-indexed envelope

**Determinism.**  Index bytes are a pure function of the set of indexed
envelopes: postings are sorted, terms shard to one of :data:`N_SLOTS`
segments by term hash, every file is canonical JSON named by the sha256
of its own bytes, and the manifest carries no timestamps.  Two
independently built indexes over the same store are therefore
byte-identical trees, and an incremental fold-in reproduces exactly what
a full rebuild would have written.

**Freshness.**  Every report ``put`` lands a pending-delta record — the
envelope's fully extracted document — beside the index.  Readers overlay
pending deltas in memory at load time, so a query issued right after a
batch sees every new report with zero rebuild; ``repro index`` folds the
deltas into the segments durably and deletes them.

**Crash safety.**  Segment/doc files are content-addressed and the
manifest is written atomically last, so a crashed builder leaves either
the old index or the new one, never a torn tree (orphaned segment files
are garbage-collected by the next fold).  A corrupt pending delta — a
writer that died mid-``put`` — is re-extracted from its stored envelope
(the filename is the result key), or dropped when the envelope never
landed either.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .docs import doc_from_envelope, extract_doc

#: Bump when the index layout (manifest, segment, docs or pending record
#: shape) changes incompatibly; a mismatched tree reads as "no index".
INDEX_SCHEMA = 1

#: Terms shard to ``sha256(term) % N_SLOTS`` segments.  Fixed — changing
#: it is an index schema change.
N_SLOTS = 16

#: A posting: where one transaction lives.
Posting = tuple[str, str, int]  # (app, result key, txn id)


# ------------------------------------------------------------------ paths
def index_root(store_root: str | Path) -> Path:
    return Path(store_root) / "index"


def pending_dir(store_root: str | Path) -> Path:
    return index_root(store_root) / "pending"


def manifest_path(store_root: str | Path) -> Path:
    return index_root(store_root) / "MANIFEST.json"


def _canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True, indent=2)


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".idx.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> dict | None:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def term_slot(term: str) -> int:
    digest = hashlib.sha256(term.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % N_SLOTS


# ---------------------------------------------------------------- pending
def write_pending_delta(store_root: str | Path, key: str, app: str,
                        report: dict) -> None:
    """Land the pending-delta record for one freshly stored report.

    Called by :meth:`ResultStore.put_envelope` on every report write, so
    batch and daemon stores never go stale: the record carries the fully
    extracted document, and readers fold it in at load time.  Atomic and
    idempotent — re-putting the same key rewrites an identical record.
    """
    record = {
        "schema": INDEX_SCHEMA,
        "key": key,
        "app": app,
        "doc": extract_doc(key, app, report),
    }
    _atomic_write(pending_dir(store_root) / f"{key}.json",
                  _canonical(record))


def _load_pending(store, *, consume_errors: bool = True) -> tuple[dict, list]:
    """Read every pending delta: ``(docs by key, stale file paths)``.

    A record that is unreadable or written under another schema — a
    crashed writer — is recovered from its stored envelope when possible;
    otherwise its path is returned as stale (deletable garbage).
    """
    docs: dict[str, dict] = {}
    stale: list[Path] = []
    pdir = pending_dir(store.root)
    try:
        paths = sorted(p for p in pdir.iterdir() if p.suffix == ".json")
    except OSError:
        return docs, stale
    for path in paths:
        record = _read_json(path)
        if (
            record is not None
            and record.get("schema") == INDEX_SCHEMA
            and isinstance(record.get("doc"), dict)
            and record.get("key") == path.stem
        ):
            docs[record["key"]] = record["doc"]
            continue
        # crashed or foreign writer: the filename is the result key, so
        # the document is recoverable from the store itself
        envelope = store.load(path.stem)
        doc = doc_from_envelope(envelope) if envelope else None
        if doc is not None:
            docs[path.stem] = doc
        elif consume_errors:
            stale.append(path)
    return docs, stale


# ----------------------------------------------------------- doc registry
def _registry_entry(doc: dict) -> dict:
    """The durable (term-free) form of one document for the doc registry:
    everything the catalog, ``like:`` resolution and result labelling
    need."""
    return {
        "app": doc.get("app", ""),
        "summary": doc.get("summary", {}),
        "txns": {str(t["id"]): t["label"] for t in doc.get("txns", ())},
    }


def _doc_postings(key: str, doc: dict) -> dict[str, set[Posting]]:
    out: dict[str, set[Posting]] = {}
    app = doc.get("app", "")
    for txn in doc.get("txns", ()):
        posting = (app, key, int(txn["id"]))
        for term in txn.get("terms", ()):
            out.setdefault(term, set()).add(posting)
    return out


# ------------------------------------------------------------ FleetIndex
class FleetIndex:
    """An in-memory view of the on-disk index plus its pending overlay.

    ``load()`` reads the manifest tree and folds every pending delta into
    memory (never onto disk), so the view is always current with the
    store.  ``refresh()`` is the cheap staleness probe the HTTP service
    calls per query: it reloads only when the manifest or the pending set
    changed.
    """

    def __init__(self, store) -> None:
        self.store = store
        self.root = index_root(store.root)
        self.postings: dict[str, set[Posting]] = {}
        self.docs: dict[str, dict] = {}
        self.pending_count = 0
        self._loaded_state: tuple | None = None

    # ------------------------------------------------------------- state
    def _disk_state(self) -> tuple:
        """A cheap fingerprint of what load() would read."""
        try:
            manifest_stat = manifest_path(self.store.root).stat()
            manifest = (manifest_stat.st_mtime_ns, manifest_stat.st_size)
        except OSError:
            manifest = None
        try:
            pending = tuple(sorted(
                p.name for p in pending_dir(self.store.root).iterdir()
                if p.suffix == ".json"
            ))
        except OSError:
            pending = ()
        return (manifest, pending)

    def refresh(self) -> "FleetIndex":
        state = self._disk_state()
        if state != self._loaded_state:
            self.load()
            self._loaded_state = state
        return self

    def load(self) -> "FleetIndex":
        self.docs, self.postings = _load_tree(self.store, self.manifest())
        pending, _stale = _load_pending(self.store, consume_errors=False)
        self.pending_count = 0
        for key, doc in sorted(pending.items()):
            if key in self.docs:
                continue  # already folded durably; delta is a leftover
            self.docs[key] = _registry_entry(doc)
            for term, postings in _doc_postings(key, doc).items():
                self.postings.setdefault(term, set()).update(postings)
            self.pending_count += 1
        return self

    def manifest(self) -> dict | None:
        manifest = _read_json(manifest_path(self.store.root))
        if manifest is None or manifest.get("schema") != INDEX_SCHEMA:
            return None
        return manifest

    # ------------------------------------------------------------ queries
    def lookup(self, term: str) -> set[Posting]:
        return self.postings.get(term, set())

    def label(self, key: str, txn_id: int) -> str:
        doc = self.docs.get(key) or {}
        return (doc.get("txns") or {}).get(str(txn_id), "")

    def apps(self) -> dict[str, dict]:
        """The catalog view: per app, its stored keys and aggregated
        summary (hosts, endpoint/transaction counts, dependency
        fields) — sorted, deterministic."""
        out: dict[str, dict] = {}
        for key in sorted(self.docs):
            doc = self.docs[key]
            app = doc.get("app", "")
            summary = doc.get("summary") or {}
            entry = out.setdefault(app, {
                "app": app,
                "keys": [],
                "hosts": set(),
                "endpoints": 0,
                "transactions": 0,
                "dependencies": 0,
                "dependency_fields": set(),
            })
            entry["keys"].append(key)
            entry["hosts"].update(summary.get("hosts", ()))
            entry["endpoints"] += summary.get("endpoints", 0)
            entry["transactions"] += summary.get("transactions", 0)
            entry["dependencies"] += summary.get("dependencies", 0)
            entry["dependency_fields"].update(
                summary.get("dependency_fields", ())
            )
        for entry in out.values():
            entry["hosts"] = sorted(entry["hosts"])
            entry["dependency_fields"] = sorted(entry["dependency_fields"])
        return out

    def stats(self) -> dict:
        return {
            "docs": len(self.docs),
            "apps": len({d.get("app", "") for d in self.docs.values()}),
            "terms": len(self.postings),
            "postings": sum(len(p) for p in self.postings.values()),
            "pending": self.pending_count,
        }


def _load_tree(store, manifest: dict | None) -> tuple[dict, dict]:
    """Rehydrate ``(doc registry, postings)`` from the manifest tree —
    empty maps when there is no (or a foreign-schema) index yet."""
    docs: dict[str, dict] = {}
    postings: dict[str, set[Posting]] = {}
    if manifest is None:
        return docs, postings
    root = index_root(store.root)
    for sha in manifest.get("segments", {}).values():
        segment = _read_json(root / "segments" / f"{sha}.json")
        if segment is None or segment.get("schema") != INDEX_SCHEMA:
            continue
        for term, term_postings in segment.get("terms", {}).items():
            postings[term] = {
                (app, key, int(txn)) for app, key, txn in term_postings
            }
    registry = _read_json(root / "docs" / f"{manifest.get('docs')}.json")
    if registry is not None and registry.get("schema") == INDEX_SCHEMA:
        docs = dict(registry.get("docs", {}))
    return docs, postings


# ------------------------------------------------------------- building
def _extract_chunk(store_root: str, keys: list[str]) -> list[dict]:
    """Worker: extract the documents of a key chunk (module-level so the
    process executor can ship it)."""
    from ..service.store import ResultStore

    store = ResultStore(store_root)
    docs: list[dict] = []
    for key in keys:
        envelope = store.load(key)
        doc = doc_from_envelope(envelope) if envelope else None
        if doc is not None:
            docs.append(doc)
    return docs


def _extract_all(store, *, executor: str = "serial",
                 workers: int = 0) -> dict[str, dict]:
    """Every report envelope's document, sharded across workers.

    Sharding is a throughput knob only: results merge into one sorted
    map, so serial, thread- and process-sharded builds produce identical
    indexes.
    """
    keys = [
        entry["key"] for entry in store.iter_entries()
    ]
    if not keys:
        return {}
    from ..perf.parallel import resolve_executor, resolve_workers

    engine = resolve_executor(executor)
    width = min(resolve_workers(workers), len(keys))
    if engine == "serial" or width <= 1:
        return {d["key"]: d for d in _extract_chunk(str(store.root), keys)}

    chunks = [keys[i::width] for i in range(width)]
    parts: list[list[dict]] | None = None
    if engine == "process":
        try:
            import multiprocessing as mp

            method = "fork" if "fork" in mp.get_all_start_methods() else None
            with mp.get_context(method).Pool(width) as pool:
                parts = pool.starmap(
                    _extract_chunk,
                    [(str(store.root), chunk) for chunk in chunks],
                )
        except (OSError, ValueError, RuntimeError, ImportError):
            parts = None  # silent: thread build writes identical bytes
    if parts is None:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(width) as pool:
            parts = list(pool.map(
                lambda chunk: _extract_chunk(str(store.root), chunk), chunks
            ))
    return {doc["key"]: doc for part in parts for doc in part}


def build_index(store, *, rebuild: bool = False, executor: str = "serial",
                workers: int = 0) -> dict:
    """Build or update the on-disk index; returns its stats dict.

    Default mode folds pending deltas into the existing segments
    (building from scratch when no index exists); ``rebuild=True`` always
    re-extracts every envelope.  Either path writes the exact same bytes
    for the same store contents.
    """
    manifest = _read_json(manifest_path(store.root))
    if manifest is not None and manifest.get("schema") != INDEX_SCHEMA:
        manifest = None  # foreign schema: rebuild rather than mis-fold
        rebuild = True
    rebuild = rebuild or manifest is None

    pending, stale = _load_pending(store)
    consumed = [pending_dir(store.root) / f"{key}.json" for key in pending]

    if rebuild:
        # every pending delta's envelope is part of the scan (or gone),
        # so a full build consumes the whole pending set
        fresh = _extract_all(store, executor=executor, workers=workers)
        registry: dict[str, dict] = {}
        postings: dict[str, set[Posting]] = {}
        folded = len(fresh)
    else:
        registry, postings = _load_tree(store, manifest)
        fresh = {
            key: doc for key, doc in pending.items() if key not in registry
        }
        folded = len(fresh)

    for key in sorted(fresh):
        doc = fresh[key]
        registry[key] = _registry_entry(doc)
        for term, term_postings in _doc_postings(key, doc).items():
            postings.setdefault(term, set()).update(term_postings)

    stats = _write_index_from_postings(store, registry, postings)
    _consume(consumed + stale)
    stats["folded"] = folded
    stats["rebuilt"] = rebuild
    return stats


def _write_index_from_postings(store, registry: dict[str, dict],
                               postings: dict[str, set[Posting]]) -> dict:
    """Serialise postings + registry into the content-addressed tree and
    swing the manifest; garbage-collects superseded files."""
    root = index_root(store.root)
    seg_dir = root / "segments"
    docs_dir = root / "docs"
    # the pending drop-box is part of the tree layout: writers expect it
    # and tree comparisons (diff -r) should see identical structure
    pending_dir(store.root).mkdir(parents=True, exist_ok=True)

    slots: list[dict] = [{} for _ in range(N_SLOTS)]
    for term in sorted(postings):
        slots[term_slot(term)][term] = sorted(
            [app, key, txn] for app, key, txn in postings[term]
        )
    segment_shas: dict[str, str] = {}
    keep_segments: set[str] = set()
    for slot, terms in enumerate(slots):
        text = _canonical({
            "schema": INDEX_SCHEMA, "slot": slot, "terms": terms
        })
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        segment_shas[f"{slot:02d}"] = sha
        keep_segments.add(f"{sha}.json")
        path = seg_dir / f"{sha}.json"
        if not path.exists():
            _atomic_write(path, text)

    registry_text = _canonical({
        "schema": INDEX_SCHEMA,
        "docs": {key: registry[key] for key in sorted(registry)},
    })
    docs_sha = hashlib.sha256(registry_text.encode("utf-8")).hexdigest()
    docs_path = docs_dir / f"{docs_sha}.json"
    if not docs_path.exists():
        _atomic_write(docs_path, registry_text)

    stats = {
        "docs": len(registry),
        "apps": len({d.get("app", "") for d in registry.values()}),
        "terms": len(postings),
        "postings": sum(len(p) for p in postings.values()),
        "segments": N_SLOTS,
    }
    _atomic_write(manifest_path(store.root), _canonical({
        "schema": INDEX_SCHEMA,
        "slots": N_SLOTS,
        "segments": segment_shas,
        "docs": docs_sha,
        "stats": stats,
    }))

    _gc_dir(seg_dir, keep_segments)
    _gc_dir(docs_dir, {f"{docs_sha}.json"})
    return dict(stats)


def _gc_dir(directory: Path, keep: set[str]) -> None:
    """Drop every file the fresh manifest does not reference — superseded
    segments and builder temp files alike."""
    try:
        names = list(directory.iterdir())
    except OSError:
        return
    for path in names:
        if path.name not in keep:
            try:
                path.unlink()
            except OSError:
                pass


def _consume(paths: list[Path]) -> None:
    for path in paths:
        try:
            path.unlink()
        except OSError:
            pass


__all__ = [
    "FleetIndex",
    "INDEX_SCHEMA",
    "N_SLOTS",
    "build_index",
    "index_root",
    "manifest_path",
    "pending_dir",
    "term_slot",
    "write_pending_delta",
]
