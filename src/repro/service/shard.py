"""Process-sharded batch execution: work-stealing analyzer processes over
one shared result store.

The thread scheduler in :mod:`repro.service.jobs` tops out at the GIL for
the same reason the in-app thread executor does — analyses are pure-Python
CPU work.  :func:`run_sharded_batch` therefore shards a batch across ``N``
analyzer *processes*:

* **Static shards, dynamic stealing.**  Worker ``i`` owns the round-robin
  shard ``targets[i::N]`` as a deque: it pops its own work from the front,
  and once drained walks the other shards *from the back* (the classic
  work-stealing order — stealers and owners collide as late as possible).
  No shared queue process: coordination happens through atomic claim files
  in the store, so a worker that finishes early drains the stragglers'
  tails instead of idling.
* **Two-level claims.**  A batch-local *claim* (``batch-<id>-<index>``)
  makes exactly one worker responsible for a target before any expensive
  resolution happens, and guarantees exactly one result record per batch
  entry.  After resolution, the store-wide *lease* on the result key
  (:meth:`~repro.service.store.ResultStore.claim`) dedups in-flight
  analyses across *independent* processes and daemons sharing the store:
  a worker that loses the lease race waits for the winner's envelope to
  land instead of re-analysing.
* **Result-carried observability.**  Workers cannot share the parent's
  tracer or metrics registry, so every record travels back over the result
  queue with its wall time, attempt count and steal provenance; the parent
  folds them into its :class:`~repro.obs.metrics.MetricsRegistry` and
  replays one ``job:<label>`` span per record (see
  :class:`~repro.perf.procpool.SpanRecord` for the in-app analogue).

Reports written by sharded workers are byte-identical to thread-mode and
serial output: the store's canonical JSON + the engine's differential
tests guarantee it, and ``tests/test_service_shard.py`` asserts it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import uuid
from collections import deque
from dataclasses import dataclass, field

from ..perf.procpool import default_start_method

#: How long a worker waits (total) for another process's in-flight analysis
#: of the same key before giving up and analysing itself.
LEASE_WAIT_SECONDS = 60.0
_LEASE_POLL = 0.02


@dataclass
class ShardRecord:
    """One batch entry's outcome, as reported by the worker that owned it."""

    index: int
    target: str
    shard: int
    #: which worker actually ran it (!= shard when the item was stolen)
    worker: int
    status: str = "done"  # done | failed
    cache_hit: bool = False
    stolen: bool = False
    label: str = ""
    result_key: str | None = None
    attempts: int = 0
    seconds: float = 0.0
    #: combined "<Type>: <message>" string (kept for compatibility);
    #: ``error_type``/``error_message`` carry the structured split so
    #: ``repro runs show`` can explain *why* an app failed
    error: str | None = None
    error_type: str | None = None
    error_message: str | None = None
    traceback: str | None = None
    #: per-phase wall seconds from the worker-side PhaseStats
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: worker-side counter deltas folded into the parent registry
    counters: dict[str, int] = field(default_factory=dict)

    def fail(self, exc: BaseException, *, trace: bool = False) -> None:
        """Record a structured failure from an exception."""
        self.status = "failed"
        self.error_type = type(exc).__name__
        self.error_message = str(exc)
        self.error = f"{self.error_type}: {self.error_message}"
        if trace:
            self.traceback = traceback.format_exc()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "target": self.target,
            "shard": self.shard,
            "worker": self.worker,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "stolen": self.stolen,
            "label": self.label,
            "result_key": self.result_key,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "error": self.error,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.traceback,
            "phase_seconds": self.phase_seconds,
        }


def shard_of(targets: list, shard: int, workers: int) -> list[tuple[int, object]]:
    """Round-robin shard ``shard`` of ``targets`` with original indices."""
    return [(i, t) for i, t in enumerate(targets) if i % workers == shard]


def _analyze_once(apk, config, timeout: float | None, tracer=None):
    from .jobs import call_with_timeout

    def run():
        from ..core.extractocol import Extractocol

        if tracer is not None:
            return Extractocol(config, tracer=tracer).analyze(apk)
        return Extractocol(config).analyze(apk)

    return call_with_timeout(run, timeout)


def _process_item(
    store,
    index: int,
    target: str,
    overrides: dict | None,
    *,
    worker_id: int,
    shard: int,
    retries: int,
    backoff: float,
    timeout: float | None,
    span=None,
) -> ShardRecord:
    """Resolve, dedup and (if needed) analyse one claimed batch entry.
    When ``span`` is given the analysis trace nests under it (see
    :class:`~repro.obs.tracer.SpanTracer`)."""
    from ..obs.tracer import SpanTracer
    from .jobs import resolve_target
    from .store import result_key

    tracer = SpanTracer(span) if span is not None and span else None
    record = ShardRecord(
        index=index,
        target=target,
        shard=shard,
        worker=worker_id,
        stolen=(shard != worker_id),
    )
    try:
        apk, config, label = resolve_target(target, overrides)
    except Exception as exc:
        record.fail(exc, trace=True)
        record.label = target
        return record
    record.label = label
    if config.resolved_executor == "process":
        # The shard worker IS the process-level parallelism: it runs as a
        # daemon and cannot fork children, and nesting pools would
        # oversubscribe the host anyway.  Executor is an execution detail
        # excluded from cache_key(), so the result key is unchanged.
        config.executor = "thread"

    from ..apk.loader import apk_digest

    digest = apk_digest(apk)
    key = result_key(digest, config.cache_key())
    record.result_key = key
    started = time.monotonic()

    if store.get(digest, config.cache_key()) is not None:
        record.cache_hit = True
        record.seconds = time.monotonic() - started
        return record

    if not store.claim(key, owner=f"shard-{worker_id}"):
        # an independent process is analysing this key right now: wait for
        # its envelope instead of duplicating the work
        deadline = time.monotonic() + LEASE_WAIT_SECONDS
        while time.monotonic() < deadline:
            if store.get(digest, config.cache_key()) is not None:
                record.cache_hit = True
                record.counters["lease_waits"] = 1
                record.seconds = time.monotonic() - started
                return record
            if store.claim(key, owner=f"shard-{worker_id}"):
                break  # holder vanished without a result — take over
            time.sleep(_LEASE_POLL)
        else:
            record.status = "failed"
            record.error_type = "LeaseWaitTimeout"
            record.error_message = (
                f"timed out waiting for in-flight analysis of {key} "
                f"(lease holder: {store.lease_holder(key)})"
            )
            record.error = record.error_message
            record.seconds = time.monotonic() - started
            return record

    try:
        for attempt in range(1, retries + 2):
            record.attempts = attempt
            try:
                t0 = time.monotonic()
                report = _analyze_once(apk, config, timeout, tracer)
                record.counters["analyses_run"] = (
                    record.counters.get("analyses_run", 0) + 1
                )
                stats = getattr(report, "phase_stats", None)
                if stats is not None:
                    record.phase_seconds = {
                        phase: round(seconds, 6)
                        for phase, seconds in stats.seconds.items()
                    }
                store.put(
                    digest,
                    config.cache_key(),
                    report,
                    analysis_seconds=time.monotonic() - t0,
                )
                record.seconds = time.monotonic() - started
                return record
            except Exception as exc:
                # structured detail only; status stays "done" until the
                # retry budget is exhausted (a later attempt may succeed)
                record.error_type = type(exc).__name__
                record.error_message = str(exc)
                record.error = f"{record.error_type}: {record.error_message}"
                record.traceback = traceback.format_exc()
                from .jobs import JobTimeout

                if isinstance(exc, JobTimeout):
                    break  # a deadline blow-through is not transient
                if attempt <= retries:
                    record.counters["jobs_retried"] = (
                        record.counters.get("jobs_retried", 0) + 1
                    )
                    time.sleep(backoff * (2 ** (attempt - 1)))
        record.status = "failed"
        record.seconds = time.monotonic() - started
        return record
    finally:
        store.release(key)


def _shard_worker(
    worker_id: int,
    workers: int,
    targets: list[str],
    store_root: str,
    overrides: dict | None,
    batch_id: str,
    retries: int,
    backoff: float,
    timeout: float | None,
    out_q,
    telemetry_dir: str | None = None,
) -> None:
    """Analyzer worker process: drain the owned shard front-to-back, then
    steal other shards back-to-front.  Every item is gated on the
    batch-local claim, so each batch entry is processed (and reported)
    exactly once across all workers.

    With ``telemetry_dir`` set, the worker emits fleet telemetry: a
    heartbeat beacon around every item and a full span stream
    (``worker-<n>.trace.jsonl``) where each processed entry is a
    ``job:<target>`` span — tagged with run/worker/shard correlation
    ids — under which the whole analysis trace nests.
    """
    from ..perf.parallel import silence_fallback_warnings, take_fallback_reasons
    from .store import ResultStore

    # one audible warning per *fleet*, not per worker: reasons travel back
    # in the exit payload and the coordinator surfaces them once
    silence_fallback_warnings()
    telemetry = None
    root_span = None
    if telemetry_dir is not None:
        from ..obs.fleet import WorkerTelemetry
        from ..obs.tracer import Span

        telemetry = WorkerTelemetry(telemetry_dir, worker_id, batch_id)
        root_span = Span(f"worker-{worker_id}")
        root_span.set("run_id", batch_id)
        root_span.set("worker", worker_id)

    store = ResultStore(store_root)
    own: deque = deque(shard_of(targets, worker_id, workers))
    steal_order: list[tuple[int, object]] = []
    for victim in range(1, workers):
        other = shard_of(targets, (worker_id + victim) % workers, workers)
        steal_order.extend(reversed(other))
    work = list(own) + steal_order
    done = 0
    try:
        for index, target in work:
            if not store.claim(f"batch-{batch_id}-{index}", owner=f"w{worker_id}"):
                continue  # another worker owns this entry
            job_span = None
            if root_span is not None:
                job_span = root_span.child(f"job:{target}")
                job_span.set("index", index)
                job_span.set("app_key", str(target))
                job_span.set("run_id", batch_id)
                job_span.set("worker", worker_id)
                job_span.set("shard", index % workers)
            if telemetry is not None:
                telemetry.heartbeat(
                    status="running", in_flight=str(target), processed=done
                )
            record = _process_item(
                store,
                index,
                target,
                overrides,
                worker_id=worker_id,
                shard=index % workers,
                retries=retries,
                backoff=backoff,
                timeout=timeout,
                span=job_span,
            )
            if job_span is not None:
                job_span.seconds = record.seconds
                job_span.set("status", record.status)
                job_span.set("stolen", record.stolen)
                job_span.set("cache_hit", record.cache_hit)
                for name, amount in record.counters.items():
                    job_span.count(name, amount)
            done += 1
            if telemetry is not None:
                telemetry.heartbeat(status="idle", processed=done)
            out_q.put(("record", record.to_dict() | {
                "counters": record.counters,
            }))
    except BaseException as exc:  # worker must always announce its exit
        out_q.put(("crash", {"worker": worker_id, "error": repr(exc)}))
        raise
    finally:
        if telemetry is not None:
            if root_span is not None:
                try:
                    telemetry.write_trace(root_span)
                except OSError:
                    pass  # telemetry must never take the batch down
            telemetry.heartbeat(status="exited", processed=done)
        out_q.put(
            (
                "exit",
                {
                    "worker": worker_id,
                    "processed": done,
                    "fallback_reasons": take_fallback_reasons(),
                },
            )
        )


def run_sharded_batch(
    store_root: str | os.PathLike,
    targets: list[str],
    *,
    workers: int,
    overrides: dict | None = None,
    retries: int = 1,
    backoff: float = 0.05,
    timeout: float | None = None,
    start_method: str | None = None,
    metrics=None,
    span=None,
    cleanup_claims: bool = True,
    run_id: str | None = None,
    telemetry_dir: str | os.PathLike | None = None,
    progress=None,
    out_meta: dict | None = None,
) -> list[ShardRecord]:
    """Run ``targets`` through ``workers`` analyzer processes; returns one
    :class:`ShardRecord` per target, in input order.

    Worker counters fold into ``metrics`` and each record replays a
    ``job:<label>`` child span on ``span`` (when given), so the parent's
    observability view is complete despite the process boundary.

    Fleet telemetry: pass ``run_id`` (also used as the batch claim id) and
    ``telemetry_dir`` to make each worker write heartbeats plus a span
    stream there; after the batch the coordinator merges the streams into
    a deterministic ``fleet.trace.jsonl``.  ``progress`` is called as
    ``progress(record, done, total)`` per completed entry (live, in
    completion order).  ``out_meta``, when given, is filled with the run's
    side facts (run_id, telemetry/fleet-trace paths, deduplicated
    executor-fallback reasons).
    """
    from .store import ResultStore

    if not targets:
        if out_meta is not None:
            out_meta.setdefault("run_id", run_id)
            out_meta.setdefault("fallback_reasons", [])
        return []
    workers = max(1, min(workers, len(targets)))
    batch_id = run_id or uuid.uuid4().hex[:12]
    if telemetry_dir is not None:
        telemetry_dir = str(telemetry_dir)
        os.makedirs(telemetry_dir, exist_ok=True)
    method = start_method or default_start_method()
    if method is None:
        raise RuntimeError("no multiprocessing start method available")
    ctx = multiprocessing.get_context(method)
    out_q = ctx.SimpleQueue()
    procs = [
        ctx.Process(
            target=_shard_worker,
            args=(
                i,
                workers,
                list(targets),
                str(store_root),
                overrides,
                batch_id,
                retries,
                backoff,
                timeout,
                out_q,
                telemetry_dir,
            ),
            daemon=True,
        )
        for i in range(workers)
    ]
    for p in procs:
        p.start()

    records: dict[int, ShardRecord] = {}
    crashes: list[dict] = []
    fallback_reasons: list[str] = []
    exited = 0
    while exited < len(procs):
        kind, payload = out_q.get()
        if kind == "exit":
            exited += 1
            fallback_reasons.extend(payload.get("fallback_reasons") or [])
        elif kind == "crash":
            crashes.append(payload)
        else:
            counters = payload.pop("counters", {}) or {}
            record = ShardRecord(**payload)
            record.counters = counters
            records[record.index] = record
            if metrics is not None:
                _fold_metrics(metrics, record)
            if progress is not None:
                progress(record, len(records), len(targets))
    for p in procs:
        p.join()

    fallback_reasons = list(dict.fromkeys(fallback_reasons))
    if fallback_reasons:
        # one audible line for the whole fleet (the workers were muted)
        from ..perf.parallel import note_executor_fallback

        note_executor_fallback(fallback_reasons[0])

    store = ResultStore(store_root)
    if cleanup_claims:
        for index in range(len(targets)):
            store.release(f"batch-{batch_id}-{index}")

    fleet_trace = None
    if telemetry_dir is not None:
        from ..obs.fleet import write_fleet_trace

        try:
            fleet_trace = str(write_fleet_trace(telemetry_dir))
        except (OSError, ValueError):
            fleet_trace = None  # a crashed worker may leave a torn stream
    if out_meta is not None:
        out_meta["run_id"] = batch_id
        out_meta["telemetry_dir"] = telemetry_dir
        out_meta["fleet_trace"] = fleet_trace
        out_meta["fallback_reasons"] = fallback_reasons

    out: list[ShardRecord] = []
    for index, target in enumerate(targets):
        record = records.get(index)
        if record is None:  # owning worker crashed before reporting
            crash = crashes[0]["error"] if crashes else "worker exited early"
            record = ShardRecord(
                index=index,
                target=target,
                shard=index % workers,
                worker=-1,
                status="failed",
                label=target,
                error=f"no result from shard worker ({crash})",
            )
            if metrics is not None:
                _fold_metrics(metrics, record)
        out.append(record)
        if span is not None and span:
            child = span.child(f"job:{record.label or record.target}")
            child.seconds = record.seconds
            child.set("status", record.status)
            if record.stolen:
                child.count("stolen", 1)
    return out


def _fold_metrics(metrics, record: ShardRecord) -> None:
    from ..obs.fleet import family_of

    for name, amount in record.counters.items():
        metrics.counter(name).inc(amount)
    metrics.counter("jobs_submitted").inc()
    if record.status == "done":
        metrics.counter("jobs_done").inc()
        if record.cache_hit:
            metrics.counter("cache_hits_batch").inc()
        else:
            metrics.histogram("job_seconds").observe(record.seconds)
            metrics.histogram(
                "app_seconds",
                labels={"family": family_of(record.label or record.target)},
            ).observe(record.seconds)
    else:
        metrics.counter("jobs_failed").inc()
    for phase, phase_s in (record.phase_seconds or {}).items():
        metrics.histogram(
            "phase_seconds", labels={"phase": phase}
        ).observe(phase_s)
    if record.stolen:
        metrics.counter("work_steals").inc()


__all__ = [
    "LEASE_WAIT_SECONDS",
    "ShardRecord",
    "run_sharded_batch",
    "shard_of",
]
