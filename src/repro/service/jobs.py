"""In-process job scheduler for batch/daemon analysis.

The scheduler turns ``Extractocol.analyze`` into a managed workload:

* a **bounded queue** feeding a **thread worker pool** (sized with the same
  :func:`repro.perf.parallel.resolve_workers` knob semantics as the
  analysis engine: ``0`` means one worker per CPU),
* **result-store integration** — a submit whose ``(apk digest, config
  key)`` is already stored completes immediately as a cache hit; a fresh
  result is written back on success,
* **in-flight deduplication** — concurrent submits of the same key share
  one job (and therefore exactly one analysis),
* **per-job timeout**, **retry with exponential backoff** on analyzer
  exceptions, and **graceful drain** on shutdown.  The backoff never
  occupies a worker: a failed job is re-enqueued by a timer, so the thread
  goes straight back to the queue instead of head-of-line blocking
  everything behind it,
* **batch execution** via :meth:`JobScheduler.run_batch`, which routes to
  the process-sharded engine (:mod:`repro.service.shard`) when the
  ``executor`` knob resolves to ``"process"`` — N analyzer worker
  processes with work stealing over one shared store.

Everything is observable through a :class:`~repro.service.metrics
.MetricsRegistry`.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from ..apk.loader import apk_digest as compute_apk_digest
from ..apk.loader import load_apk
from ..apk.model import Apk
from ..core.config import AnalysisConfig
from ..perf.parallel import note_executor_fallback, resolve_executor, resolve_workers
from .metrics import MetricsRegistry
from .store import ResultStore


class JobTimeout(Exception):
    """The analysis exceeded the scheduler's per-job deadline."""


class QueueFull(Exception):
    """The bounded submission queue is at capacity (backpressure)."""


class JobStatus(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


_TERMINAL = {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}


@dataclass
class Job:
    """One analysis request moving through the scheduler."""

    job_id: str
    label: str
    apk_digest: str
    config_key: str
    status: JobStatus = JobStatus.QUEUED
    cache_hit: bool = False
    attempts: int = 0
    result_key: str | None = None
    error: str | None = None
    traceback: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: jobs deduplicated onto this one (their submits returned this Job)
    dedup_count: int = 0
    _apk: Apk | None = field(default=None, repr=False)
    _config: AnalysisConfig | None = field(default=None, repr=False)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    @property
    def seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def to_dict(self) -> dict:
        return {
            "id": self.job_id,
            "label": self.label,
            "status": self.status.value,
            "apk_digest": self.apk_digest,
            "config_key": self.config_key,
            "result_key": self.result_key,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "dedup_count": self.dedup_count,
            "error": self.error,
            "traceback": self.traceback,
            "seconds": self.seconds,
        }


def resolve_target(
    target: str, overrides: dict | None = None
) -> tuple[Apk, AnalysisConfig, str]:
    """Resolve a corpus key or ``.sapk`` path into ``(apk, config, label)``
    with the same per-app defaults the ``analyze`` CLI verb applies, so
    stored reports are byte-identical to ``repro analyze`` output."""
    from ..corpus import app_keys, get_spec
    from ..synth import is_synth_key

    if is_synth_key(target) or target in app_keys():
        spec = get_spec(target)
        apk = spec.build_apk()
        config = AnalysisConfig(
            async_heuristic=(spec.kind == "closed"),
            scope_prefixes=spec.scope_prefixes,
        )
        label = target
    else:
        path = Path(target)
        if not path.exists():
            raise LookupError(
                f"{target!r} is neither a corpus app key nor an .sapk bundle"
            )
        apk = load_apk(path)
        config = AnalysisConfig()
        label = apk.name or path.stem
    if overrides:
        for name, value in overrides.items():
            if not hasattr(config, name):
                raise ValueError(f"unknown AnalysisConfig field {name!r}")
            if name == "scope_prefixes":
                value = tuple(value)
            setattr(config, name, value)
    return apk, config, label


def _default_analyzer(apk: Apk, config: AnalysisConfig, store=None):
    """Run one analysis; with a ``store``, the pipeline also leaves its
    incremental manifest behind (``incremental`` mode reads it back)."""
    from ..core.extractocol import Extractocol

    return Extractocol(config, store=store).analyze(apk)


def call_with_timeout(fn, timeout: float | None):
    """Run ``fn()`` under a wall-clock deadline; raises :class:`JobTimeout`
    when it blows through.  ``None`` means no deadline (no helper thread).

    Shared by the thread scheduler and the sharded worker processes — the
    deadline semantics must match so a target fails identically under both
    executors."""
    if timeout is None:
        return fn()
    box: dict = {}

    def run() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # propagated to the caller below
            box["error"] = exc

    t = threading.Thread(target=run, daemon=True)
    t.start()
    t.join(timeout)
    if t.is_alive():
        raise JobTimeout(f"analysis exceeded {timeout:g}s deadline")
    if "error" in box:
        raise box["error"]
    return box["result"]


class JobScheduler:
    """Bounded-queue thread-pool scheduler around the result store.

    ``analyzer`` is injectable for testing (failure injection, counting);
    it must be a ``(apk, config) -> AnalysisReport`` callable.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        workers: int = 2,
        max_queue: int = 128,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        executor: str = "thread",
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
        analyzer=None,
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if store.metrics is None:
            store.metrics = self.metrics
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.executor = executor
        self.start_method = start_method
        self.analyzer = analyzer or (
            lambda apk, config: _default_analyzer(apk, config, store=store)
        )
        self.workers = resolve_workers(workers)
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._shutdown = False
        #: retry timers armed by :meth:`_schedule_retry`, keyed by job id
        self._retry_pending: dict[str, tuple[threading.Timer, Job]] = {}
        self._threads: list[threading.Thread] = []

    def _ensure_workers(self) -> None:
        """Start the thread pool on first submit (caller holds the lock).
        Lazy so a purely process-sharded :meth:`run_batch` never forks a
        parent that is already carrying worker threads."""
        if self._threads:
            return
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ----------------------------------------------------------- submit
    def submit(
        self, apk: Apk, config: AnalysisConfig, *, label: str | None = None
    ) -> Job:
        """Enqueue an analysis; returns its :class:`Job`.

        Cache hits complete synchronously without queueing; a submit whose
        key is already queued or running returns the existing job.  Raises
        :class:`QueueFull` when the bounded queue is at capacity.
        """
        digest = compute_apk_digest(apk)
        config_key = config.cache_key()
        key = f"{digest}-{config_key}"
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            self._ensure_workers()
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.dedup_count += 1
                self.metrics.counter("jobs_deduplicated").inc()
                return inflight
            job = Job(
                job_id=f"j{self._counter:05d}",
                label=label or apk.name or digest[:12],
                apk_digest=digest,
                config_key=config_key,
                submitted_at=time.monotonic(),
                _apk=apk,
                _config=config,
            )
            self._counter += 1
            self._jobs[job.job_id] = job
            self.metrics.counter("jobs_submitted").inc()

            if self.store.get(digest, config_key) is not None:
                self._finish(job, JobStatus.DONE, cache_hit=True, key=key)
                return job

            try:
                self._queue.put_nowait(job)
            except queue.Full:
                del self._jobs[job.job_id]
                self.metrics.counter("jobs_rejected").inc()
                raise QueueFull(
                    f"queue at capacity ({self._queue.maxsize}); retry later"
                ) from None
            self._inflight[key] = job
            self.metrics.gauge("queue_depth").inc()
        return job

    def submit_target(self, target: str, overrides: dict | None = None) -> Job:
        apk, config, label = resolve_target(target, overrides)
        return self.submit(apk, config, label=label)

    # ------------------------------------------------------------ batches
    def run_batch(
        self,
        targets: list[str],
        overrides: dict | None = None,
        *,
        span=None,
        run_id: str | None = None,
        telemetry_dir=None,
        progress=None,
        out_meta: dict | None = None,
    ) -> list[dict]:
        """Run a batch of targets end to end; returns one record dict per
        target, in input order.

        The scheduler's ``executor`` knob picks the engine: ``"process"``
        (or ``"auto"`` where fork is available) shards the batch across
        analyzer worker processes with work stealing
        (:func:`repro.service.shard.run_sharded_batch`); ``"thread"`` /
        ``"serial"`` submit through the in-process pool.  Records from both
        engines share the ``target`` / ``label`` / ``status`` /
        ``cache_hit`` / ``attempts`` / ``seconds`` / ``result_key`` /
        ``error`` keys, both fold counters into ``self.metrics``, and the
        stored reports are byte-identical either way.
        """
        from ..corpus import app_keys
        from ..synth import expand_targets, is_synth_key, parse_app_key

        # population specs (synth:<families>*<scale>[@<seed>]) expand into
        # self-describing syn- keys any worker process can rebuild
        targets = expand_targets(list(targets))
        known = set(app_keys())
        for target in targets:
            if is_synth_key(target):
                parse_app_key(target)  # raises KeyError on a malformed key
            elif target not in known and not Path(target).exists():
                raise LookupError(
                    f"{target!r} is neither a corpus app key, a synthesized "
                    f"app key, a population spec, nor an .sapk bundle"
                )
        engine = resolve_executor(self.executor)
        if engine == "process":
            from .shard import run_sharded_batch

            try:
                records = run_sharded_batch(
                    self.store.root,
                    targets,
                    workers=self.workers,
                    overrides=overrides,
                    retries=self.retries,
                    backoff=self.backoff,
                    timeout=self.timeout,
                    start_method=self.start_method,
                    metrics=self.metrics,
                    span=span,
                    run_id=run_id,
                    telemetry_dir=telemetry_dir,
                    progress=progress,
                    out_meta=out_meta,
                )
            except RuntimeError as exc:
                note_executor_fallback(str(exc))
            else:
                return [r.to_dict() for r in records]
        if out_meta is not None:
            # the thread engine runs in-process: no worker telemetry dir
            out_meta.setdefault("run_id", run_id)
            out_meta.setdefault("fallback_reasons", [])
        jobs = [self.submit_target(t, overrides) for t in targets]
        out: list[dict] = []
        for done, (target, job) in enumerate(zip(targets, jobs), 1):
            job.wait()
            record = dict(job.to_dict(), target=target)
            out.append(record)
            if progress is not None:
                progress(record, done, len(targets))
        return out

    # ------------------------------------------------------------ query
    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def worker_status(self) -> list[dict]:
        """Liveness of the in-process worker pool (``GET /status`` and the
        ``worker_up`` Prometheus gauges).  Empty until the lazily-started
        pool has spun up."""
        with self._lock:
            threads = list(self._threads)
        return [
            {"worker": thread.name, "alive": thread.is_alive()}
            for thread in threads
        ]

    def wait(self, jobs=None, timeout: float | None = None) -> bool:
        """Block until the given jobs (default: all known) finish.
        Returns False if ``timeout`` elapsed first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in list(jobs) if jobs is not None else self.jobs():
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not job.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------ workers
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            self.metrics.gauge("queue_depth").dec()
            self.metrics.gauge("running").inc()
            job.status = JobStatus.RUNNING
            if job.started_at is None:  # keep the first attempt's clock
                job.started_at = time.monotonic()
            try:
                self._run_job(job)
            finally:
                self.metrics.gauge("running").dec()
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        """One analysis attempt.  A retryable failure does not sleep here:
        the backoff runs on a daemon :class:`threading.Timer` that
        re-enqueues the job, so this worker goes straight back to the queue
        instead of head-of-line blocking every job behind the backoff (the
        old inline ``time.sleep`` stalled a 1-worker pool for the whole
        window)."""
        key = f"{job.apk_digest}-{job.config_key}"
        apk, config = job._apk, job._config
        job.attempts += 1
        try:
            started = time.monotonic()
            self.metrics.counter("analyses_run").inc()
            report = call_with_timeout(
                lambda: self.analyzer(apk, config), self.timeout
            )
            elapsed = time.monotonic() - started
            self.metrics.histogram("analyze_seconds").observe(elapsed)
            from ..obs.fleet import family_of

            self.metrics.histogram(
                "app_seconds", labels={"family": family_of(job.label)}
            ).observe(elapsed)
            stats = getattr(report, "phase_stats", None)
            if stats is not None:
                for phase, phase_s in stats.seconds.items():
                    self.metrics.histogram(
                        "phase_seconds", labels={"phase": phase}
                    ).observe(phase_s)
            for finding in getattr(report, "lint_findings", ()) or ():
                self.metrics.counter(
                    f"lint_findings_{finding.severity.value}"
                ).inc()
            job.result_key = self.store.put(
                job.apk_digest,
                job.config_key,
                report,
                analysis_seconds=time.monotonic() - started,
            )
            with self._lock:
                self._finish(job, JobStatus.DONE, key=key)
            return
        except JobTimeout as exc:
            # a deadline blow-through is not transient: do not retry
            job.error = str(exc)
            self.metrics.counter("jobs_timeout").inc()
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.traceback = traceback_mod.format_exc()
            if job.attempts <= self.retries:
                if self._schedule_retry(job):
                    return
                # shutting down: nothing is queued behind this worker any
                # more, so take the backoff inline and retry in place —
                # drain semantics still finish the job
                self.metrics.counter("jobs_retried").inc()
                time.sleep(self.backoff * (2 ** (job.attempts - 1)))
                self._run_job(job)
                return
        with self._lock:
            self._finish(job, JobStatus.FAILED, key=key)

    def _schedule_retry(self, job: Job) -> bool:
        """Arm a timer that re-enqueues ``job`` after its backoff; False
        when the scheduler is shutting down (caller handles it inline)."""
        delay = self.backoff * (2 ** (job.attempts - 1))
        with self._lock:
            if self._shutdown:
                return False
            self.metrics.counter("jobs_retried").inc()
            job.status = JobStatus.QUEUED
            timer = threading.Timer(delay, self._requeue, args=(job,))
            timer.daemon = True
            self._retry_pending[job.job_id] = (timer, job)
        timer.start()
        return True

    def _requeue(self, job: Job) -> None:
        """Timer callback: put a backed-off job at the back of the queue."""
        with self._lock:
            if self._retry_pending.pop(job.job_id, None) is None:
                return  # shutdown already settled this job
            if self._shutdown:
                # lost a race with shutdown: settle here rather than risk
                # landing behind the worker sentinels
                job.error = job.error or "cancelled at shutdown"
                self._finish(
                    job,
                    JobStatus.CANCELLED,
                    key=f"{job.apk_digest}-{job.config_key}",
                )
                return
            self.metrics.gauge("queue_depth").inc()
        self._queue.put(job)

    def _finish(
        self,
        job: Job,
        status: JobStatus,
        *,
        key: str,
        cache_hit: bool = False,
    ) -> None:
        """Terminal transition; caller holds ``self._lock``."""
        job.status = status
        job.cache_hit = cache_hit
        if cache_hit:
            job.started_at = job.finished_at = time.monotonic()
            job.result_key = key
        else:
            job.finished_at = time.monotonic()
        self._inflight.pop(key, None)
        if status is JobStatus.DONE:
            self.metrics.counter("jobs_done").inc()
            if job.seconds is not None and not cache_hit:
                self.metrics.histogram("job_seconds").observe(job.seconds)
        elif status is JobStatus.FAILED:
            self.metrics.counter("jobs_failed").inc()
        job._apk = job._config = None  # release the program graph
        job._done.set()

    # ---------------------------------------------------------- shutdown
    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the pool.  ``drain=True`` finishes queued work first;
        ``drain=False`` cancels everything still queued."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pending = list(self._retry_pending.values())
            self._retry_pending.clear()
            if not drain:
                cancelled: list[Job] = []
                try:
                    while True:
                        cancelled.append(self._queue.get_nowait())
                        self._queue.task_done()
                except queue.Empty:
                    pass
                for job in cancelled:
                    if job is not None:
                        job.error = "cancelled at shutdown"
                        self._finish(
                            job,
                            JobStatus.CANCELLED,
                            key=f"{job.apk_digest}-{job.config_key}",
                        )
        for timer, job in pending:
            timer.cancel()
            if drain:
                # skip the rest of the backoff: the workers stay alive
                # until the sentinels below, so the retry still runs
                self.metrics.gauge("queue_depth").inc()
                self._queue.put(job)
            else:
                with self._lock:
                    job.error = "cancelled at shutdown"
                    self._finish(
                        job,
                        JobStatus.CANCELLED,
                        key=f"{job.apk_digest}-{job.config_key}",
                    )
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=True)


__all__ = [
    "Job",
    "JobScheduler",
    "JobStatus",
    "JobTimeout",
    "QueueFull",
    "call_with_timeout",
    "resolve_target",
]
