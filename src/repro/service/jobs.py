"""In-process job scheduler for batch/daemon analysis.

The scheduler turns ``Extractocol.analyze`` into a managed workload:

* a **bounded queue** feeding a **thread worker pool** (sized with the same
  :func:`repro.perf.parallel.resolve_workers` knob semantics as the
  analysis engine: ``0`` means one worker per CPU),
* **result-store integration** — a submit whose ``(apk digest, config
  key)`` is already stored completes immediately as a cache hit; a fresh
  result is written back on success,
* **in-flight deduplication** — concurrent submits of the same key share
  one job (and therefore exactly one analysis),
* **per-job timeout**, **retry with exponential backoff** on analyzer
  exceptions, and **graceful drain** on shutdown.

Everything is observable through a :class:`~repro.service.metrics
.MetricsRegistry`.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from ..apk.loader import apk_digest as compute_apk_digest
from ..apk.loader import load_apk
from ..apk.model import Apk
from ..core.config import AnalysisConfig
from ..perf.parallel import resolve_workers
from .metrics import MetricsRegistry
from .store import ResultStore


class JobTimeout(Exception):
    """The analysis exceeded the scheduler's per-job deadline."""


class QueueFull(Exception):
    """The bounded submission queue is at capacity (backpressure)."""


class JobStatus(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


_TERMINAL = {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}


@dataclass
class Job:
    """One analysis request moving through the scheduler."""

    job_id: str
    label: str
    apk_digest: str
    config_key: str
    status: JobStatus = JobStatus.QUEUED
    cache_hit: bool = False
    attempts: int = 0
    result_key: str | None = None
    error: str | None = None
    traceback: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: jobs deduplicated onto this one (their submits returned this Job)
    dedup_count: int = 0
    _apk: Apk | None = field(default=None, repr=False)
    _config: AnalysisConfig | None = field(default=None, repr=False)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    @property
    def seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def to_dict(self) -> dict:
        return {
            "id": self.job_id,
            "label": self.label,
            "status": self.status.value,
            "apk_digest": self.apk_digest,
            "config_key": self.config_key,
            "result_key": self.result_key,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "dedup_count": self.dedup_count,
            "error": self.error,
            "traceback": self.traceback,
            "seconds": self.seconds,
        }


def resolve_target(
    target: str, overrides: dict | None = None
) -> tuple[Apk, AnalysisConfig, str]:
    """Resolve a corpus key or ``.sapk`` path into ``(apk, config, label)``
    with the same per-app defaults the ``analyze`` CLI verb applies, so
    stored reports are byte-identical to ``repro analyze`` output."""
    from ..corpus import app_keys, get_spec

    if target in app_keys():
        spec = get_spec(target)
        apk = spec.build_apk()
        config = AnalysisConfig(
            async_heuristic=(spec.kind == "closed"),
            scope_prefixes=spec.scope_prefixes,
        )
        label = target
    else:
        path = Path(target)
        if not path.exists():
            raise LookupError(
                f"{target!r} is neither a corpus app key nor an .sapk bundle"
            )
        apk = load_apk(path)
        config = AnalysisConfig()
        label = apk.name or path.stem
    if overrides:
        for name, value in overrides.items():
            if not hasattr(config, name):
                raise ValueError(f"unknown AnalysisConfig field {name!r}")
            if name == "scope_prefixes":
                value = tuple(value)
            setattr(config, name, value)
    return apk, config, label


def _default_analyzer(apk: Apk, config: AnalysisConfig):
    from ..core.extractocol import Extractocol

    return Extractocol(config).analyze(apk)


class JobScheduler:
    """Bounded-queue thread-pool scheduler around the result store.

    ``analyzer`` is injectable for testing (failure injection, counting);
    it must be a ``(apk, config) -> AnalysisReport`` callable.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        workers: int = 2,
        max_queue: int = 128,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        metrics: MetricsRegistry | None = None,
        analyzer=None,
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if store.metrics is None:
            store.metrics = self.metrics
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.analyzer = analyzer or _default_analyzer
        self.workers = resolve_workers(workers)
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ----------------------------------------------------------- submit
    def submit(
        self, apk: Apk, config: AnalysisConfig, *, label: str | None = None
    ) -> Job:
        """Enqueue an analysis; returns its :class:`Job`.

        Cache hits complete synchronously without queueing; a submit whose
        key is already queued or running returns the existing job.  Raises
        :class:`QueueFull` when the bounded queue is at capacity.
        """
        digest = compute_apk_digest(apk)
        config_key = config.cache_key()
        key = f"{digest}-{config_key}"
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.dedup_count += 1
                self.metrics.counter("jobs_deduplicated").inc()
                return inflight
            job = Job(
                job_id=f"j{self._counter:05d}",
                label=label or apk.name or digest[:12],
                apk_digest=digest,
                config_key=config_key,
                submitted_at=time.monotonic(),
                _apk=apk,
                _config=config,
            )
            self._counter += 1
            self._jobs[job.job_id] = job
            self.metrics.counter("jobs_submitted").inc()

            if self.store.get(digest, config_key) is not None:
                self._finish(job, JobStatus.DONE, cache_hit=True, key=key)
                return job

            try:
                self._queue.put_nowait(job)
            except queue.Full:
                del self._jobs[job.job_id]
                self.metrics.counter("jobs_rejected").inc()
                raise QueueFull(
                    f"queue at capacity ({self._queue.maxsize}); retry later"
                ) from None
            self._inflight[key] = job
            self.metrics.gauge("queue_depth").inc()
        return job

    def submit_target(self, target: str, overrides: dict | None = None) -> Job:
        apk, config, label = resolve_target(target, overrides)
        return self.submit(apk, config, label=label)

    # ------------------------------------------------------------ query
    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def wait(self, jobs=None, timeout: float | None = None) -> bool:
        """Block until the given jobs (default: all known) finish.
        Returns False if ``timeout`` elapsed first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in list(jobs) if jobs is not None else self.jobs():
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not job.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------ workers
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            self.metrics.gauge("queue_depth").dec()
            self.metrics.gauge("running").inc()
            job.status = JobStatus.RUNNING
            job.started_at = time.monotonic()
            try:
                self._run_job(job)
            finally:
                self.metrics.gauge("running").dec()
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        key = f"{job.apk_digest}-{job.config_key}"
        apk, config = job._apk, job._config
        last_exc: BaseException | None = None
        for attempt in range(1, self.retries + 2):
            job.attempts = attempt
            try:
                started = time.monotonic()
                self.metrics.counter("analyses_run").inc()
                report = self._call_with_timeout(
                    lambda: self.analyzer(apk, config)
                )
                self.metrics.histogram("analyze_seconds").observe(
                    time.monotonic() - started
                )
                for finding in getattr(report, "lint_findings", ()) or ():
                    self.metrics.counter(
                        f"lint_findings_{finding.severity.value}"
                    ).inc()
                job.result_key = self.store.put(
                    job.apk_digest,
                    job.config_key,
                    report,
                    analysis_seconds=time.monotonic() - started,
                )
                with self._lock:
                    self._finish(job, JobStatus.DONE, key=key)
                return
            except JobTimeout as exc:
                # a deadline blow-through is not transient: do not retry
                job.error = str(exc)
                self.metrics.counter("jobs_timeout").inc()
                break
            except Exception as exc:
                last_exc = exc
                job.error = f"{type(exc).__name__}: {exc}"
                job.traceback = traceback_mod.format_exc()
                if attempt <= self.retries:
                    self.metrics.counter("jobs_retried").inc()
                    time.sleep(self.backoff * (2 ** (attempt - 1)))
        with self._lock:
            self._finish(job, JobStatus.FAILED, key=key)

    def _call_with_timeout(self, fn):
        if self.timeout is None:
            return fn()
        box: dict = {}

        def run() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # propagated to the worker below
                box["error"] = exc

        t = threading.Thread(target=run, daemon=True)
        t.start()
        t.join(self.timeout)
        if t.is_alive():
            raise JobTimeout(f"analysis exceeded {self.timeout:g}s deadline")
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _finish(
        self,
        job: Job,
        status: JobStatus,
        *,
        key: str,
        cache_hit: bool = False,
    ) -> None:
        """Terminal transition; caller holds ``self._lock``."""
        job.status = status
        job.cache_hit = cache_hit
        if cache_hit:
            job.started_at = job.finished_at = time.monotonic()
            job.result_key = key
        else:
            job.finished_at = time.monotonic()
        self._inflight.pop(key, None)
        if status is JobStatus.DONE:
            self.metrics.counter("jobs_done").inc()
            if job.seconds is not None and not cache_hit:
                self.metrics.histogram("job_seconds").observe(job.seconds)
        elif status is JobStatus.FAILED:
            self.metrics.counter("jobs_failed").inc()
        job._apk = job._config = None  # release the program graph
        job._done.set()

    # ---------------------------------------------------------- shutdown
    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the pool.  ``drain=True`` finishes queued work first;
        ``drain=False`` cancels everything still queued."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            if not drain:
                cancelled: list[Job] = []
                try:
                    while True:
                        cancelled.append(self._queue.get_nowait())
                        self._queue.task_done()
                except queue.Empty:
                    pass
                for job in cancelled:
                    if job is not None:
                        job.error = "cancelled at shutdown"
                        self._finish(
                            job,
                            JobStatus.CANCELLED,
                            key=f"{job.apk_digest}-{job.config_key}",
                        )
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=True)


__all__ = [
    "Job",
    "JobScheduler",
    "JobStatus",
    "JobTimeout",
    "QueueFull",
    "resolve_target",
]
