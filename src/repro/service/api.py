"""Stdlib HTTP JSON API around the job scheduler and result store.

Endpoints::

    POST /analyze          {"target": "<corpus key | .sapk path>",
                            "config": {...AnalysisConfig overrides}}
                           — or a raw ``.sapk`` zip body
                           (Content-Type: application/zip) with config
                           overrides in the X-Repro-Config header
    GET  /jobs             all jobs
    GET  /jobs/<id>        one job
    GET  /report/<key>     stored result envelope by result key
    GET  /reports          metadata of stored reports (key, app, config
                           key, schema, transaction count, summary),
                           paginated: ``?limit=&cursor=`` with an opaque
                           ``next_cursor`` in the response
    GET  /search           fleet index query: ``?q=<query>`` with the
                           ``repro search`` grammar (``host:``, ``path:``,
                           ``field:``, ``app:``, ``like:<app>/<txn>``,
                           free text), paginated like ``/reports``;
                           counts ``search_queries`` and observes
                           ``search_latency`` seconds
    GET  /catalog          the fleet app catalog (per-app keys, hosts,
                           endpoint/dependency aggregates), paginated
    GET  /diff/<k1>/<k2>   protocol diff of two stored reports, computed
                           once and cached in the store
    GET  /metrics          counters / gauges / histograms + store stats
                           (JSON by default; ``?format=prometheus`` or an
                           ``Accept: text/plain`` header switches to
                           Prometheus text exposition, including per-phase
                           and per-family latency histograms and
                           ``worker_up`` liveness gauges)
    GET  /status           fleet status: uptime, job tallies, worker
                           liveness, store stats, recent run-ledger entries
    GET  /healthz          liveness + queue snapshot

``POST /analyze`` answers ``202`` with the job (``200`` when the result
was already stored — the job is born done as a cache hit).  The server is
a ``ThreadingHTTPServer``: concurrent posts for the same APK are collapsed
onto one job by the scheduler's in-flight deduplication.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from urllib.parse import parse_qs, urlsplit

from ..apk.loader import load_apk
from ..core.config import AnalysisConfig
from ..obs.metrics import render_prometheus
from .jobs import JobScheduler, QueueFull, resolve_target
from .metrics import MetricsRegistry
from .store import ResultStore

_ZIP_TYPES = {"application/zip", "application/octet-stream"}


class AnalysisService:
    """The service facade: one store + one scheduler + one HTTP server."""

    def __init__(
        self,
        store_root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8425,
        workers: int = 2,
        max_queue: int = 128,
        timeout: float | None = None,
        retries: int = 1,
        executor: str = "thread",
        analyzer=None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.store = ResultStore(store_root, metrics=self.metrics)
        # the HTTP path stays thread-based by default: submits are
        # interactive and dedup-heavy, where fork-per-batch buys little —
        # pass executor="process" to shard daemon-side batches instead
        self.scheduler = JobScheduler(
            self.store,
            workers=workers,
            max_queue=max_queue,
            timeout=timeout,
            retries=retries,
            executor=executor,
            metrics=self.metrics,
            analyzer=analyzer,
        )
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None
        # fleet search: one shared index view, refreshed per query (the
        # refresh is a stat probe unless the store actually changed);
        # tracer defaults to the null tracer so a long-lived daemon never
        # accumulates spans — tests inject a real Tracer to see them
        from ..obs.tracer import NULL_TRACER

        self.tracer = NULL_TRACER
        self._index = None
        self._index_lock = threading.Lock()
        from ..obs.ledger import RunLedger, new_run_id

        self.run_id = new_run_id()
        self.ledger = RunLedger(store_root)
        self._started_unix = time.time()

    # ---------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AnalysisService":
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def stop(self, *, drain: bool = True) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(5)
        self.scheduler.shutdown(drain=drain)
        self._append_serve_record()

    def _append_serve_record(self) -> None:
        """One ledger entry summarising the daemon's whole serving run."""
        from ..obs.ledger import RunRecord

        jobs = self.scheduler.jobs()
        try:
            self.ledger.append(
                RunRecord(
                    run_id=self.run_id,
                    kind="serve",
                    label=self.url,
                    started_unix=self._started_unix,
                    wall_s=round(time.time() - self._started_unix, 3),
                    executor=self.scheduler.executor,
                    workers=self.scheduler.workers,
                    targets=len(jobs),
                    done=sum(j.status.value == "done" for j in jobs),
                    failed=sum(j.status.value == "failed" for j in jobs),
                    cache_hits=sum(j.cache_hit for j in jobs),
                )
            )
        except OSError:
            pass  # a read-only store must not break shutdown

    # ---------------------------------------------------------- handlers
    def handle_analyze(self, body: bytes, content_type: str, headers) -> tuple[int, dict]:
        overrides: dict | None = None
        if content_type.split(";")[0].strip() in _ZIP_TYPES:
            raw = headers.get("X-Repro-Config")
            if raw:
                overrides = json.loads(raw)
            apk, config, label = self._load_bundle(body, overrides)
        else:
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError:
                return 400, {"error": "request body is not valid JSON"}
            target = payload.get("target")
            if not target:
                return 400, {"error": "missing 'target'"}
            overrides = payload.get("config")
            try:
                apk, config, label = resolve_target(target, overrides)
            except LookupError as exc:
                return 404, {"error": str(exc)}
            except ValueError as exc:
                return 400, {"error": str(exc)}
        try:
            job = self.scheduler.submit(apk, config, label=label)
        except QueueFull as exc:
            return 429, {"error": str(exc)}
        return (200 if job.cache_hit else 202), {"job": job.to_dict()}

    def _load_bundle(self, body: bytes, overrides: dict | None):
        with tempfile.NamedTemporaryFile(suffix=".zip") as tmp:
            tmp.write(body)
            tmp.flush()
            apk = load_apk(tmp.name)
        config = AnalysisConfig()
        if overrides:
            for name, value in overrides.items():
                if not hasattr(config, name):
                    raise ValueError(f"unknown AnalysisConfig field {name!r}")
                if name == "scope_prefixes":
                    value = tuple(value)
                setattr(config, name, value)
        return apk, config, apk.name or "uploaded"

    def handle_metrics(self) -> dict:
        data = self.metrics.to_dict()
        data["store"] = self.store.stats()
        return data

    def handle_metrics_prometheus(self) -> str:
        """The registry in Prometheus text exposition format, with the
        store stats mirrored in as gauges and one ``worker_up`` liveness
        gauge per scheduler worker."""
        for name, value in self.store.stats().items():
            self.metrics.gauge(f"store_{name}").set(int(value))
        for worker in self.scheduler.worker_status():
            self.metrics.gauge(
                "worker_up", labels={"worker": worker["worker"]}
            ).set(int(worker["alive"]))
        return render_prometheus(self.metrics)

    def handle_status(self) -> dict:
        """Fleet status: what is this daemon doing right now, and what has
        this store seen recently."""
        jobs = self.scheduler.jobs()
        by_status: dict[str, int] = {}
        for job in jobs:
            by_status[job.status.value] = by_status.get(job.status.value, 0) + 1
        return {
            "status": "ok",
            "run_id": self.run_id,
            "uptime_s": round(time.time() - self._started_unix, 3),
            "executor": self.scheduler.executor,
            "jobs": {"total": len(jobs), **by_status},
            "workers": self.scheduler.worker_status(),
            "store": self.store.stats(),
            "recent_runs": [
                {
                    "run_id": record.get("run_id"),
                    "kind": record.get("kind"),
                    "label": record.get("label"),
                    "targets": record.get("targets"),
                    "failed": record.get("failed"),
                    "wall_s": record.get("wall_s"),
                }
                for record in self.ledger.tail(5)
            ],
        }

    # ------------------------------------------------------------- search
    def _fleet_index(self):
        from ..fleetindex.index import FleetIndex

        if self._index is None:
            self._index = FleetIndex(self.store)
        return self._index.refresh()

    def handle_search(
        self, q: str, limit: int | None, cursor: str | None
    ) -> tuple[int, dict]:
        from ..fleetindex.query import QueryError, run_search

        if not q:
            return 400, {"error": "missing 'q' query parameter"}
        self.metrics.counter("search_queries").inc()
        started = time.perf_counter()
        # one lock around refresh + query: refresh() swaps the in-memory
        # maps, and ThreadingHTTPServer handles requests concurrently
        with self._index_lock:
            index = self._fleet_index()
            try:
                result = run_search(
                    index, q, limit=limit, cursor=cursor, tracer=self.tracer
                )
            except QueryError as exc:
                return 400, {"error": str(exc)}
        self.metrics.histogram("search_latency").observe(
            time.perf_counter() - started
        )
        return 200, result

    def handle_catalog(
        self, limit: int | None, cursor: str | None
    ) -> tuple[int, dict]:
        from ..fleetindex.query import catalog

        with self._index_lock:
            return 200, catalog(
                self._fleet_index(), limit=limit, cursor=cursor
            )

    def handle_reports(
        self, limit: int | None, cursor: str | None
    ) -> tuple[int, dict]:
        from ..fleetindex.query import paginate

        entries = self.store.list_entries()
        page, next_cursor = paginate(
            entries,
            limit=limit,
            cursor=cursor,
            sort_key=lambda e: [e["app"], e["stored_at"], e["key"]],
        )
        return 200, {
            "reports": page,
            "total": len(entries),
            "next_cursor": next_cursor,
        }

    def handle_diff(self, old_key: str, new_key: str) -> tuple[int, dict]:
        from ..diff.engine import cached_diff, diff_cache_key

        result = cached_diff(self.store, old_key, new_key)
        if result is None:
            return 404, {
                "error": "one or both report keys are not in the store"
            }
        diff, was_cached = result
        self.metrics.counter(
            "diffs_cached" if was_cached else "diffs_computed"
        ).inc()
        return 200, {
            "old_key": old_key,
            "new_key": new_key,
            "cached": was_cached,
            "cache_key": diff_cache_key(old_key, new_key),
            "diff": diff,
        }

    def handle_healthz(self) -> dict:
        jobs = self.scheduler.jobs()
        return {
            "status": "ok",
            "jobs": len(jobs),
            "queued": sum(j.status.value == "queued" for j in jobs),
            "running": sum(j.status.value == "running" for j in jobs),
            "store_entries": len(self.store.entries()),
        }


def _paging(query: dict) -> tuple[int | None, str | None]:
    """``(limit, cursor)`` from parsed query params; garbage limits fall
    back to the default page size."""
    try:
        limit = int(query.get("limit", [""])[0]) or None
    except ValueError:
        limit = None
    return limit, query.get("cursor", [None])[0]


def _make_handler(service: AnalysisService):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service/1"
        protocol_version = "HTTP/1.1"

        # silence per-request stderr logging; metrics cover observability
        def log_message(self, fmt, *args) -> None:
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True, indent=2).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            url = urlsplit(self.path)
            path = url.path.rstrip("/")
            query = parse_qs(url.query)
            if path == "/healthz":
                self._send(200, service.handle_healthz())
            elif path == "/status":
                self._send(200, service.handle_status())
            elif path == "/metrics":
                wants_text = query.get("format", [""])[0] == "prometheus" or (
                    "text/plain" in self.headers.get("Accept", "")
                )
                if wants_text:
                    self._send_text(
                        200,
                        service.handle_metrics_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send(200, service.handle_metrics())
            elif path == "/jobs":
                self._send(
                    200,
                    {"jobs": [j.to_dict() for j in service.scheduler.jobs()]},
                )
            elif path.startswith("/jobs/"):
                job = service.scheduler.job(path.removeprefix("/jobs/"))
                if job is None:
                    self._send(404, {"error": "no such job"})
                else:
                    self._send(200, {"job": job.to_dict()})
            elif path == "/reports":
                self._send(
                    200, service.handle_reports(*_paging(query))[1]
                )
            elif path == "/search":
                status, payload = service.handle_search(
                    query.get("q", [""])[0], *_paging(query)
                )
                self._send(status, payload)
            elif path == "/catalog":
                status, payload = service.handle_catalog(*_paging(query))
                self._send(status, payload)
            elif path.startswith("/report/"):
                envelope = service.store.load(path.removeprefix("/report/"))
                if envelope is None:
                    self._send(404, {"error": "no such report"})
                else:
                    self._send(200, envelope)
            elif path.startswith("/diff/"):
                parts = path.removeprefix("/diff/").split("/")
                if len(parts) != 2 or not all(parts):
                    self._send(
                        400, {"error": "expected /diff/<old_key>/<new_key>"}
                    )
                else:
                    try:
                        status, payload = service.handle_diff(*parts)
                    except Exception as exc:  # defensive, like do_POST
                        status, payload = 500, {
                            "error": f"{type(exc).__name__}: {exc}"
                        }
                    self._send(status, payload)
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:
            if self.path.rstrip("/") != "/analyze":
                self._send(404, {"error": f"unknown path {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            content_type = self.headers.get("Content-Type", "application/json")
            try:
                status, payload = service.handle_analyze(
                    body, content_type, self.headers
                )
            except ValueError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # defensive: never kill the acceptor
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            self._send(status, payload)

    return Handler


__all__ = ["AnalysisService"]
