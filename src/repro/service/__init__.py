"""The serving layer: batch/daemon analysis around ``Extractocol.analyze``.

PR 1 made one analysis fast; this package makes *fleets* of analyses
operable.  Three layers, separately usable:

:mod:`repro.service.store`
    Content-addressed, schema-versioned on-disk result store keyed by
    ``(APK digest, AnalysisConfig.cache_key())`` with atomic writes.

:mod:`repro.service.jobs`
    Bounded-queue thread-pool scheduler with cache integration, in-flight
    deduplication, per-job timeouts, retry with backoff, graceful drain.

:mod:`repro.service.api`
    Stdlib HTTP JSON API (``repro serve``) exposing submit/status/report/
    metrics/health endpoints.

``repro batch`` (CLI) drives the scheduler directly, no HTTP involved.
"""

from .jobs import Job, JobScheduler, JobStatus, JobTimeout, QueueFull, resolve_target
from .metrics import MetricsRegistry
from .store import ResultStore, result_key

__all__ = [
    "AnalysisService",
    "Job",
    "JobScheduler",
    "JobStatus",
    "JobTimeout",
    "MetricsRegistry",
    "QueueFull",
    "ResultStore",
    "resolve_target",
    "result_key",
]


def __getattr__(name: str):
    # AnalysisService pulls in http.server; keep it lazy for batch users.
    if name == "AnalysisService":
        from .api import AnalysisService

        return AnalysisService
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
