"""The serving layer: batch/daemon analysis around ``Extractocol.analyze``.

PR 1 made one analysis fast; this package makes *fleets* of analyses
operable.  Three layers, separately usable:

:mod:`repro.service.store`
    Content-addressed, schema-versioned on-disk result store keyed by
    ``(APK digest, AnalysisConfig.cache_key())`` with atomic writes.

:mod:`repro.service.jobs`
    Bounded-queue thread-pool scheduler with cache integration, in-flight
    deduplication, per-job timeouts, non-blocking retry with backoff,
    graceful drain — plus :meth:`~repro.service.jobs.JobScheduler
    .run_batch`, the batch entry point that routes to the sharded engine.

:mod:`repro.service.shard`
    Process-sharded batch execution: N analyzer worker processes with
    work stealing over one shared store, coordinated by lease files.

:mod:`repro.service.api`
    Stdlib HTTP JSON API (``repro serve``) exposing submit/status/report/
    metrics/health endpoints.

``repro batch`` (CLI) drives the scheduler directly, no HTTP involved.

Fleet telemetry (worker trace streams, heartbeats, the run ledger) lives
in :mod:`repro.obs.fleet` / :mod:`repro.obs.ledger`; the shard engine and
the daemon write it, ``repro runs`` / ``repro batch --progress`` /
``GET /status`` read it.
"""

from .jobs import (
    Job,
    JobScheduler,
    JobStatus,
    JobTimeout,
    QueueFull,
    call_with_timeout,
    resolve_target,
)
from .metrics import MetricsRegistry
from .store import ResultStore, result_key

__all__ = [
    "AnalysisService",
    "Job",
    "JobScheduler",
    "JobStatus",
    "JobTimeout",
    "MetricsRegistry",
    "QueueFull",
    "ResultStore",
    "ShardRecord",
    "call_with_timeout",
    "resolve_target",
    "result_key",
    "run_sharded_batch",
]


def __getattr__(name: str):
    # AnalysisService pulls in http.server, the shard runner pulls in
    # multiprocessing; keep both lazy for plain store/scheduler users.
    if name == "AnalysisService":
        from .api import AnalysisService

        return AnalysisService
    if name in ("ShardRecord", "run_sharded_batch"):
        from . import shard

        return getattr(shard, name)
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
