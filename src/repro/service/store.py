"""Content-addressed on-disk result store.

Analysis results are immutable functions of ``(APK content, semantic
config)``: the parallel engine is differentially tested to produce
byte-identical reports to the serial one, so a report computed once can be
served forever.  The store therefore keys entries by

    ``<sha256 of the canonical .sapk serialisation>-<AnalysisConfig.cache_key()>``

and writes each entry exactly once, atomically (temp file + ``os.replace``
in the same directory), as canonical JSON (``sort_keys=True, indent=2``).
Entries carry a schema version; entries written by an older schema are
treated as misses and rewritten, never mis-parsed.

Layout::

    <root>/objects/<key[:2]>/<key>.json
    <root>/leases/<name>.lease

The two-level fan-out keeps directories small for fleet-sized corpora.

**Leases** are the cross-process companion to the atomic object writes:
multiple analyzer processes (or daemons) sharing one store claim a lease
file — ``O_CREAT | O_EXCL``, so exactly one claimant wins — before running
an analysis, giving in-flight deduplication that survives process
boundaries.  A lease records its holder's pid and claim time; leases whose
holder died or whose age exceeds the TTL are *stale* and may be broken by
the next claimant (same-host pid liveness — fleet deployments sharing a
store across hosts should rely on the TTL).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path

from ..core.report import AnalysisReport, report_from_dict, report_to_dict
from .metrics import MetricsRegistry

#: Bump when the envelope or report dict shape changes incompatibly.
SCHEMA_VERSION = 1

#: A lease older than this is stale regardless of holder liveness — guards
#: against pid reuse and cross-host holders the liveness probe can't see.
DEFAULT_LEASE_TTL = 600.0


def result_key(apk_digest: str, config_key: str) -> str:
    """The content address of one analysis result."""
    return f"{apk_digest}-{config_key}"


def manifest_key(app: str, config_key: str) -> str:
    """The address of an app's *latest* incremental manifest.

    Keyed by app name (hashed — names are free-form), not APK digest:
    a warm run analysing version N+1 must find the manifest version N
    left behind, and digests differ across versions by construction.
    Each write replaces the previous version's manifest, so a lineage
    chain (v1 → v2 → v3) always diffs against its immediate ancestor.
    """
    digest = hashlib.sha256(app.encode("utf-8")).hexdigest()[:16]
    return f"manifest-{digest}-{config_key}"


def canonical_json(data: dict) -> str:
    """The store's one serialisation: byte-stable for identical dicts."""
    return json.dumps(data, sort_keys=True, indent=2)


class ResultStore:
    """Durable cache of analysis reports, content-addressed and versioned.

    ``get``/``put`` operate on report dicts (the :func:`report_to_dict`
    form); :meth:`get_report` rebuilds a live report view.  Hit/miss/write
    counts are tracked on the instance and mirrored into an optional
    :class:`MetricsRegistry`.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        metrics: MetricsRegistry | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.root = Path(root).expanduser()
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.manifests = self.root / "manifests"
        self.leases = self.root / "leases"
        self.lease_ttl = lease_ttl
        self.metrics = metrics
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.manifest_writes = 0

    # ------------------------------------------------------------- paths
    def path_for(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def manifest_path(self, key: str) -> Path:
        # Side-band tree: manifests never shadow report keys, never show
        # up in entries()/list_entries(), and a pre-manifest store layout
        # simply reads as "no manifest" (full re-analysis).
        return self.manifests / f"{key}.json"

    def lease_path(self, name: str) -> Path:
        return self.leases / f"{name}.lease"

    # ------------------------------------------------------------- leases
    def claim(self, name: str, *, owner: str | None = None) -> bool:
        """Atomically claim the lease ``name``; True when this caller won.

        Exactly one concurrent claimant succeeds (``O_CREAT | O_EXCL``).
        A lease left behind by a dead or timed-out holder is broken and
        re-claimed transparently.  Claims are advisory: they coordinate
        *work*, never object reads/writes (those stay atomic on their own).
        """
        path = self.lease_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "owner": owner or f"pid-{os.getpid()}",
                "claimed_unix": time.time(),
            }
        )
        for attempt in range(2):  # second pass only after breaking a stale lease
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._lease_stale(path):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            return True
        return False

    def release(self, name: str) -> None:
        """Drop the lease ``name`` (idempotent)."""
        try:
            os.unlink(self.lease_path(name))
        except OSError:
            pass

    def lease_holder(self, name: str) -> dict | None:
        """The live lease's recorded holder, or ``None`` when unclaimed
        (or unreadable — a claim racing its own write)."""
        try:
            return json.loads(self.lease_path(name).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _lease_stale(self, path: Path) -> bool:
        """A lease is stale when its holder process is gone (same host)
        or the lease outlived the TTL."""
        try:
            info = json.loads(path.read_text())
            claimed = float(info.get("claimed_unix", 0.0))
            pid = int(info.get("pid", 0))
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            # unreadable/corrupt: stale only once it has had time to settle
            try:
                return time.time() - path.stat().st_mtime > self.lease_ttl
            except OSError:
                return False  # vanished — the holder released it; not stale
        if time.time() - claimed > self.lease_ttl:
            return True
        if pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except (OSError, PermissionError):
                pass  # exists but not ours (or unsupported) — trust the TTL
        return False

    # ------------------------------------------------------------- reads
    def get(self, apk_digest: str, config_key: str) -> dict | None:
        """The stored envelope for ``(apk, config)``, or ``None`` on miss.

        Unreadable, corrupt or schema-incompatible entries count as misses:
        the caller re-analyses and the fresh ``put`` replaces them.
        """
        key = result_key(apk_digest, config_key)
        envelope = self.load(key)
        if (
            envelope is None
            or envelope.get("schema") != SCHEMA_VERSION
            or "report" not in envelope
        ):
            self._record(hit=False)
            return None
        self._record(hit=True)
        return envelope

    def load(self, key: str) -> dict | None:
        """Load an envelope by full result key (no hit/miss accounting —
        this is the ``GET /report/<key>`` lookup, not a cache probe)."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def get_report(
        self, apk_digest: str, config_key: str
    ) -> AnalysisReport | None:
        envelope = self.get(apk_digest, config_key)
        if envelope is None:
            return None
        return report_from_dict(envelope["report"])

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------ writes
    def put(
        self,
        apk_digest: str,
        config_key: str,
        report: AnalysisReport,
        *,
        analysis_seconds: float | None = None,
    ) -> str:
        """Store a report; returns its result key.

        The write is atomic: readers either see the complete entry or the
        previous state, never a torn file.  Timing metadata lives in the
        envelope — outside ``report`` — so the report payload stays
        byte-identical across runs.
        """
        key = result_key(apk_digest, config_key)
        envelope = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "apk_digest": apk_digest,
            "config_key": config_key,
            "app": report.app,
            "analysis_seconds": (
                analysis_seconds
                if analysis_seconds is not None
                else report.analysis_seconds
            ),
            "report": report_to_dict(report),
        }
        from ..fleetindex.docs import report_summary

        # compact queryable block (hosts/endpoint counts/dependency
        # fields) so listings and the fleet indexer never have to walk
        # the full report payload; carries its own summary schema
        envelope["summary"] = report_summary(envelope["report"])
        if report.phase_stats is not None:
            # run-specific profile: envelope metadata, like
            # analysis_seconds — never inside the "report" payload
            envelope["phase_stats"] = report.phase_stats.to_dict()
        if getattr(report, "lint_findings", None):
            # quick-glance severity totals; the findings themselves travel
            # inside the report payload (its "lint" key)
            from ..lint.diagnostics import count_by_severity

            envelope["lint"] = {
                severity: amount
                for severity, amount in count_by_severity(
                    report.lint_findings
                ).items()
                if amount
            }
        return self.put_envelope(key, envelope)

    def put_envelope(self, key: str, envelope: dict) -> str:
        """Write an arbitrary envelope dict under ``key``, atomically.

        This is the raw write primitive behind :meth:`put`; derived
        artifacts (cached protocol diffs) use it directly.  Envelopes
        without a ``report`` key are invisible to :meth:`get` and
        :meth:`list_entries`.

        Report envelopes additionally land a pending-delta record in the
        side-band ``index/`` tree so the fleet index never goes stale
        (see :mod:`repro.fleetindex.index`); index bookkeeping failures
        never fail the durable write itself.
        """
        self._atomic_write(self.path_for(key), key, envelope)
        with self._lock:
            self.writes += 1
        if self.metrics is not None:
            self.metrics.counter("store_writes").inc()
        if isinstance(envelope.get("report"), dict):
            from ..fleetindex.index import write_pending_delta

            try:
                write_pending_delta(
                    self.root, key, envelope.get("app", ""),
                    envelope["report"],
                )
            except OSError:
                pass
        return key

    def _atomic_write(self, path: Path, key: str, envelope: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(envelope))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # --------------------------------------------------------- manifests
    def put_manifest(self, manifest: dict) -> str:
        """Store an incremental manifest (:mod:`repro.incr.manifest`) in
        the side-band ``manifests/`` tree — invisible to :meth:`get`,
        :meth:`entries` and :meth:`list_entries`, and counted separately
        from report writes."""
        key = manifest_key(manifest["app"], manifest["config_key"])
        envelope = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "app": manifest["app"],
            "apk_digest": manifest["apk_digest"],
            "config_key": manifest["config_key"],
            "manifest": manifest,
        }
        self._atomic_write(self.manifest_path(key), key, envelope)
        with self._lock:
            self.manifest_writes += 1
        if self.metrics is not None:
            self.metrics.counter("manifest_writes").inc()
        return key

    def get_manifest(self, app: str, config_key: str) -> dict | None:
        """The latest stored manifest for ``(app, config)``, or ``None``.

        The cache-poisoning guard lives here: an envelope or manifest
        written under a different schema, or whose recorded config key
        does not match the requested one, is treated as absent — the
        caller falls back to full analysis, never to stale reuse.
        """
        from ..incr.manifest import MANIFEST_SCHEMA

        try:
            envelope = json.loads(
                self.manifest_path(
                    manifest_key(app, config_key)
                ).read_text()
            )
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != SCHEMA_VERSION
        ):
            return None
        manifest = envelope.get("manifest")
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != MANIFEST_SCHEMA
            or manifest.get("config_key") != config_key
        ):
            return None
        return manifest

    # ------------------------------------------------------------- stats
    def _record(self, *, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache_hits" if hit else "cache_misses").inc()

    def entries(self) -> list[str]:
        """All stored result keys (directory scan; for stats/debugging)."""
        return sorted(
            p.stem for p in self.objects.glob("*/*.json")
        )

    def iter_entries(self):
        """Stream metadata for every stored *report* envelope, one at a
        time in key order — large stores never materialise in memory.

        Derived artifacts (diff caches) and unreadable files are skipped;
        the report payload itself is not returned — fetch it via the key.
        Each entry carries the envelope's compact ``summary`` block,
        recomputed on the fly for envelopes that predate it (the backfill
        path — see :func:`repro.fleetindex.docs.envelope_summary`).
        """
        from ..fleetindex.docs import envelope_summary

        for path in sorted(self.objects.glob("*/*.json")):
            try:
                envelope = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(envelope, dict) or "report" not in envelope:
                continue
            report = envelope.get("report") or {}
            yield {
                "key": envelope.get("key", path.stem),
                "app": envelope.get("app", ""),
                "apk_digest": envelope.get("apk_digest", ""),
                "config_key": envelope.get("config_key", ""),
                "schema": envelope.get("schema"),
                "transactions": len(report.get("transactions", ())),
                "summary": envelope_summary(envelope),
                "stored_at": path.stat().st_mtime,
            }

    def list_entries(self) -> list[dict]:
        """Metadata for every stored *report* envelope, sorted by
        ``(app, stored_at, key)``.

        Powers ``GET /reports`` and the CLI's latest-two-versions lookup;
        prefer :meth:`iter_entries` when streaming order suffices.
        """
        out = list(self.iter_entries())
        out.sort(key=lambda e: (e["app"], e["stored_at"], e["key"]))
        return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "entries": len(self.entries()),
                "schema": SCHEMA_VERSION,
            }


__all__ = [
    "DEFAULT_LEASE_TTL",
    "ResultStore",
    "SCHEMA_VERSION",
    "canonical_json",
    "manifest_key",
    "result_key",
]
