"""Content-addressed on-disk result store.

Analysis results are immutable functions of ``(APK content, semantic
config)``: the parallel engine is differentially tested to produce
byte-identical reports to the serial one, so a report computed once can be
served forever.  The store therefore keys entries by

    ``<sha256 of the canonical .sapk serialisation>-<AnalysisConfig.cache_key()>``

and writes each entry exactly once, atomically (temp file + ``os.replace``
in the same directory), as canonical JSON (``sort_keys=True, indent=2``).
Entries carry a schema version; entries written by an older schema are
treated as misses and rewritten, never mis-parsed.

Layout::

    <root>/objects/<key[:2]>/<key>.json

The two-level fan-out keeps directories small for fleet-sized corpora.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from ..core.report import AnalysisReport, report_from_dict, report_to_dict
from .metrics import MetricsRegistry

#: Bump when the envelope or report dict shape changes incompatibly.
SCHEMA_VERSION = 1


def result_key(apk_digest: str, config_key: str) -> str:
    """The content address of one analysis result."""
    return f"{apk_digest}-{config_key}"


def canonical_json(data: dict) -> str:
    """The store's one serialisation: byte-stable for identical dicts."""
    return json.dumps(data, sort_keys=True, indent=2)


class ResultStore:
    """Durable cache of analysis reports, content-addressed and versioned.

    ``get``/``put`` operate on report dicts (the :func:`report_to_dict`
    form); :meth:`get_report` rebuilds a live report view.  Hit/miss/write
    counts are tracked on the instance and mirrored into an optional
    :class:`MetricsRegistry`.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------- paths
    def path_for(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    # ------------------------------------------------------------- reads
    def get(self, apk_digest: str, config_key: str) -> dict | None:
        """The stored envelope for ``(apk, config)``, or ``None`` on miss.

        Unreadable, corrupt or schema-incompatible entries count as misses:
        the caller re-analyses and the fresh ``put`` replaces them.
        """
        key = result_key(apk_digest, config_key)
        envelope = self.load(key)
        if (
            envelope is None
            or envelope.get("schema") != SCHEMA_VERSION
            or "report" not in envelope
        ):
            self._record(hit=False)
            return None
        self._record(hit=True)
        return envelope

    def load(self, key: str) -> dict | None:
        """Load an envelope by full result key (no hit/miss accounting —
        this is the ``GET /report/<key>`` lookup, not a cache probe)."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def get_report(
        self, apk_digest: str, config_key: str
    ) -> AnalysisReport | None:
        envelope = self.get(apk_digest, config_key)
        if envelope is None:
            return None
        return report_from_dict(envelope["report"])

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------ writes
    def put(
        self,
        apk_digest: str,
        config_key: str,
        report: AnalysisReport,
        *,
        analysis_seconds: float | None = None,
    ) -> str:
        """Store a report; returns its result key.

        The write is atomic: readers either see the complete entry or the
        previous state, never a torn file.  Timing metadata lives in the
        envelope — outside ``report`` — so the report payload stays
        byte-identical across runs.
        """
        key = result_key(apk_digest, config_key)
        envelope = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "apk_digest": apk_digest,
            "config_key": config_key,
            "app": report.app,
            "analysis_seconds": (
                analysis_seconds
                if analysis_seconds is not None
                else report.analysis_seconds
            ),
            "report": report_to_dict(report),
        }
        if report.phase_stats is not None:
            # run-specific profile: envelope metadata, like
            # analysis_seconds — never inside the "report" payload
            envelope["phase_stats"] = report.phase_stats.to_dict()
        if getattr(report, "lint_findings", None):
            # quick-glance severity totals; the findings themselves travel
            # inside the report payload (its "lint" key)
            from ..lint.diagnostics import count_by_severity

            envelope["lint"] = {
                severity: amount
                for severity, amount in count_by_severity(
                    report.lint_findings
                ).items()
                if amount
            }
        return self.put_envelope(key, envelope)

    def put_envelope(self, key: str, envelope: dict) -> str:
        """Write an arbitrary envelope dict under ``key``, atomically.

        This is the raw write primitive behind :meth:`put`; derived
        artifacts (cached protocol diffs) use it directly.  Envelopes
        without a ``report`` key are invisible to :meth:`get` and
        :meth:`list_entries`.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(envelope))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.writes += 1
        if self.metrics is not None:
            self.metrics.counter("store_writes").inc()
        return key

    # ------------------------------------------------------------- stats
    def _record(self, *, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        if self.metrics is not None:
            self.metrics.counter("cache_hits" if hit else "cache_misses").inc()

    def entries(self) -> list[str]:
        """All stored result keys (directory scan; for stats/debugging)."""
        return sorted(
            p.stem for p in self.objects.glob("*/*.json")
        )

    def list_entries(self) -> list[dict]:
        """Metadata for every stored *report* envelope, sorted by
        ``(app, stored_at, key)``.

        Powers ``GET /reports`` and the CLI's latest-two-versions lookup.
        Derived artifacts (diff caches) and unreadable files are skipped;
        the report payload itself is not returned — fetch it via the key.
        """
        out: list[dict] = []
        for path in sorted(self.objects.glob("*/*.json")):
            try:
                envelope = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(envelope, dict) or "report" not in envelope:
                continue
            report = envelope.get("report") or {}
            out.append({
                "key": envelope.get("key", path.stem),
                "app": envelope.get("app", ""),
                "apk_digest": envelope.get("apk_digest", ""),
                "config_key": envelope.get("config_key", ""),
                "schema": envelope.get("schema"),
                "transactions": len(report.get("transactions", ())),
                "stored_at": path.stat().st_mtime,
            })
        out.sort(key=lambda e: (e["app"], e["stored_at"], e["key"]))
        return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "entries": len(self.entries()),
                "schema": SCHEMA_VERSION,
            }


__all__ = [
    "ResultStore",
    "SCHEMA_VERSION",
    "canonical_json",
    "result_key",
]
