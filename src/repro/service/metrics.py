"""Operational metrics for the analysis service.

A deliberately small, dependency-free metrics layer: counters (monotonic),
gauges (instantaneous levels such as queue depth), and histograms
(latency distributions with fixed log-scale buckets).  Everything is
thread-safe and exports to a plain dict so ``GET /metrics`` can serve it
as JSON without a scrape-format dependency.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

#: Histogram bucket upper bounds, in seconds (log-ish scale spanning the
#: sub-millisecond synthetic corpus up to multi-minute real-APK runs).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level (queue depth, running jobs)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observations (seconds)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self._bounds) + 1)  # +1 for +Inf
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_right(self._bounds, value)] += 1
            self._count += 1
            self._total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    def summary(self) -> dict:
        with self._lock:
            buckets = {
                f"le_{bound:g}": count
                for bound, count in zip(self._bounds, self._counts)
            }
            buckets["le_inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._total,
                "min": self._min,
                "max": self._max,
                "mean": (self._total / self._count) if self._count else None,
                "buckets": buckets,
            }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


class MetricsRegistry:
    """Named metrics, created on first use, exported as one JSON dict."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def to_dict(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
