"""Operational metrics for the analysis service.

The implementation moved to :mod:`repro.obs.metrics` so the pipeline and
the service share one registry (and one Prometheus renderer); this module
remains as a re-export shim for existing imports.
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]
