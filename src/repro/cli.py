"""Command-line interface.

::

    python -m repro corpus                      # list corpus apps + lineages
    python -m repro corpus synth --families all --scale 500 --seed 7
    python -m repro analyze syn-transports-s7-0041   # a synthesized app
    python -m repro analyze diode               # analyze a corpus app
    python -m repro analyze path/to/app.sapk    # analyze an .sapk bundle
    python -m repro analyze diode --trace t.jsonl   # + emit a pipeline trace
    python -m repro lint                        # lint the whole corpus
    python -m repro lint diode --json           # lint one app, JSON findings
    python -m repro trace diode --flame         # trace as collapsed stacks
    python -m repro explain radioreddit 1 uri   # taint provenance of a field
    python -m repro fuzz diode --mode manual    # run a fuzzing baseline
    python -m repro export diode out.sapk       # save a corpus app to disk
    python -m repro diff reddinator@v1 reddinator@v3   # protocol drift
    python -m repro diff --latest diode         # last two stored versions
    python -m repro eval table1|table2|figures|casestudies|drift
    python -m repro batch                       # whole corpus via the scheduler
    python -m repro batch ted kayak --workers 4 # selected targets
    python -m repro batch --corpus synth:transports*100 --progress
    python -m repro runs list                   # run-ledger history
    python -m repro runs show <run-id>          # one run, with failures
    python -m repro trace --from fleet.trace.jsonl --flame
    python -m repro bench check                 # regression gate vs BENCH_*.json
    python -m repro serve --port 8425           # HTTP analysis service
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(target: str):
    """Resolve a corpus key or .sapk path into (Apk, AnalysisConfig)."""
    apk, config, _renames = _load_versioned(target)
    return apk, config


def _load_versioned(target: str):
    """Like :func:`_load` but also accepts generated lineage labels
    (``app@vN``) and returns ``(Apk, AnalysisConfig, renames_from_base)``
    — the rename map incremental mode threads through for obfuscated
    re-releases (``None`` for every other target form)."""
    from repro import AnalysisConfig
    from repro.apk.loader import load_apk
    from repro.corpus import app_keys, get_spec

    if "@" in target and not Path(target).exists():
        from repro.corpus.lineage import build_version

        try:
            built = build_version(target)
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc))
        return built.apk, built.config, built.renames_from_base
    if target.startswith("syn-") or target in app_keys():
        try:
            spec = get_spec(target)
        except KeyError as exc:
            raise SystemExit(str(exc))
        return spec.build_apk(), AnalysisConfig(
            async_heuristic=(spec.kind == "closed"),
            scope_prefixes=spec.scope_prefixes,
        ), None
    path = Path(target)
    if path.exists():
        return load_apk(path), AnalysisConfig(), None
    raise SystemExit(
        f"'{target}' is neither a corpus app key, a synthesized app key "
        f"(syn-<family>-s<seed>-<index>), a lineage label (app@vN), nor "
        f"an .sapk bundle; known keys: {', '.join(app_keys())}"
    )


def cmd_corpus(args) -> int:
    from repro.corpus import app_keys, get_spec
    from repro.corpus.lineage import lineage_keys, lineages

    for key in app_keys(args.kind):
        spec = get_spec(key)
        print(f"{key:16s} {spec.kind:6s} {spec.protocol:8s} {spec.name}")
        # lineage versions are analyzable/diffable targets too — list the
        # app@vN labels build_version() accepts right under their app
        if key in lineage_keys():
            for version in lineages()[key]:
                print(f"  {version.label:14s} {'':6s} {'':8s} "
                      f"{version.description}")
    if getattr(args, "synth", None):
        from repro.synth import parse_population, synth_genapp, synth_lineage

        pop = parse_population(args.synth)
        print()
        print(f"synthesized population {pop.spec}:")
        for syn_key in pop.keys():
            gen = synth_genapp(syn_key)
            labels = " ".join(v.label.split("@")[1]
                              for v in synth_lineage(syn_key))
            print(f"{syn_key:28s} {gen.kind:6s} {gen.protocol:8s} "
                  f"{gen.name} [{labels}]")
    return 0


def cmd_corpus_synth(args) -> int:
    """Compile a synthesized population: summary, manifest, or exported
    ``.sapk`` bundles."""
    from repro.synth import (
        PopulationSpec,
        parse_population,
        population_manifest,
        resolve_families,
    )

    if args.spec:
        pop = parse_population(args.spec)
    else:
        families = tuple(f.name for f in resolve_families(args.families))
        pop = PopulationSpec(families=families, scale=args.scale,
                             seed=args.seed)
    manifest = population_manifest(pop)

    if args.export:
        from repro.apk.loader import save_apk
        from repro.corpus import get_spec

        out_dir = Path(args.export)
        out_dir.mkdir(parents=True, exist_ok=True)
        for app in manifest["apps"]:
            save_apk(get_spec(app["key"]).build_apk(),
                     out_dir / f"{app['key']}.sapk")
        print(f"exported {manifest['totals']['apps']} bundles to {out_dir}",
              file=sys.stderr)

    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    header = (
        f"{'family':12s} {'apps':>6s} {'grid':>6s} {'endpoints':>10s} "
        f"{'truth':>6s} {'versions':>9s}"
    )
    print(f"population {pop.spec}")
    print()
    print(header)
    print("-" * len(header))
    by_family: dict[str, list[dict]] = {}
    for app in manifest["apps"]:
        by_family.setdefault(app["family"], []).append(app)
    from repro.synth import get_family

    for family, apps in by_family.items():
        print(f"{family:12s} {len(apps):>6d} "
              f"{get_family(family).grid_size:>6d} "
              f"{sum(a['endpoints'] for a in apps):>10d} "
              f"{sum(a['truth']['total'] for a in apps):>6d} "
              f"{sum(len(a['versions']) for a in apps):>9d}")
    totals = manifest["totals"]
    print("-" * len(header))
    print(f"{'total':12s} {totals['apps']:>6d} {'':>6s} "
          f"{totals['endpoints']:>10d} {totals['truth_endpoints']:>6d} "
          f"{totals['lineage_versions']:>9d}")
    print()
    print(f"population digest: {manifest['digest']}")
    return 0


def cmd_analyze(args) -> int:
    from repro import Extractocol
    from repro.core.report import report_to_dict
    from repro.obs.tracer import NULL_TRACER, Tracer

    apk, config, renames = _load_versioned(args.target)
    if args.async_heuristic is not None:
        config.async_heuristic = args.async_heuristic
    config.workers = args.workers
    config.executor = args.executor
    config.mode = args.mode
    store = None
    if args.store:
        from repro.service.store import ResultStore

        store = ResultStore(Path(args.store).expanduser())
    tracer = Tracer() if args.trace else NULL_TRACER
    import time as _time

    started_unix = _time.time()
    t0 = _time.perf_counter()
    engine = Extractocol(config, tracer=tracer, store=store)
    report = engine.analyze(apk, renames=renames)
    wall = _time.perf_counter() - t0
    stats = getattr(report, "phase_stats", None)
    if stats is not None and stats.incremental is not None:
        i = stats.incremental
        print(
            f"incremental: reused={i['reused']} "
            f"reanalyzed={i['reanalyzed']} "
            f"dirty_methods={i['dirty_methods']}",
            file=sys.stderr,
        )
    if args.trace:
        from repro.obs.export import write_jsonl

        write_jsonl(tracer.root, args.trace, timings=args.trace_timings)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.ledger:
        from repro.obs.ledger import RunLedger, RunRecord, new_run_id

        stats = getattr(report, "phase_stats", None)
        run_id = new_run_id()
        record = RunRecord.from_batch(
            run_id=run_id,
            label=args.target,
            records=[{
                "target": args.target,
                "status": "done",
                "seconds": wall,
                "phase_seconds": dict(stats.seconds) if stats else {},
            }],
            started_unix=started_unix,
            wall_s=round(wall, 4),
            executor=config.executor,
            workers=config.workers,
        )
        record.kind = "analyze"
        RunLedger(Path(args.ledger).expanduser()).append(record)
        print(f"run {run_id} recorded in {args.ledger}", file=sys.stderr)
    if args.json:
        print(json.dumps(report_to_dict(report), indent=2))
        return 0
    print(report.summary())
    print()
    for txn in report.transactions:
        print(f"#{txn.txn_id}")
        print("  " + txn.describe().replace("\n", "\n  "))
    for txn in report.unidentified:
        print(f"#{txn.txn_id} [unidentified] {txn.request.method} "
              f"{txn.request.uri_regex}")
    return 0


def cmd_lint(args) -> int:
    """Run the static lint suite (``repro.lint``) over one app, several
    apps, or the whole corpus; exit non-zero on error-severity findings
    not covered by the baseline."""
    from repro.corpus import app_keys
    from repro.lint import Baseline, Severity, findings_to_jsonl, lint_apk

    targets = list(args.targets)
    if args.corpus:
        from repro.synth import parse_population

        targets.extend(parse_population(args.corpus).keys())
    if args.all or not targets:
        targets = app_keys()

    baseline = None
    if args.baseline and Path(args.baseline).exists():
        baseline = Baseline.load(args.baseline)

    reports = []
    all_findings = []
    for target in targets:
        apk, config = _load(target)
        report = None
        slicing = None
        if args.analyze:
            from repro import Extractocol

            engine = Extractocol(config)
            report = engine.analyze(apk)
            slicing = engine.last_slicing
        lint = lint_apk(apk, report=report, slicing=slicing)
        reports.append((target, lint))
        all_findings.extend(lint.findings)

    if args.write_baseline:
        Baseline.from_findings(all_findings).save(args.write_baseline)
        print(
            f"baseline with {len(all_findings)} finding(s) written to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    new_errors = [f for f in all_findings if f.severity == Severity.ERROR]
    if baseline is not None:
        new_errors = baseline.new_findings(new_errors)

    if args.json:
        payload = {
            "apps": [
                dict(lint.to_dict(), target=target) for target, lint in reports
            ],
            "totals": {
                "apps": len(reports),
                "findings": len(all_findings),
                "errors": sum(
                    1 for f in all_findings if f.severity == Severity.ERROR
                ),
                "new_errors": len(new_errors),
            },
        }
        print(json.dumps(payload, indent=2))
    elif args.jsonl:
        sys.stdout.write(findings_to_jsonl(all_findings))
    else:
        for target, lint in reports:
            counts = lint.counts()
            shown = ", ".join(
                f"{counts[s]} {s}" for s in ("error", "warning", "info") if counts[s]
            )
            print(f"{target:16s} {shown or 'clean'}")
            for f in lint.findings:
                print(f"  {f}")
        suffix = " (all covered by baseline)" if baseline and not new_errors else ""
        total_err = sum(1 for f in all_findings if f.severity == Severity.ERROR)
        print(
            f"{len(reports)} app(s): {len(all_findings)} finding(s), "
            f"{total_err} error(s){suffix}"
        )
    return 1 if new_errors else 0


def cmd_trace(args) -> int:
    """Run one traced analysis and print/write the trace (JSONL by
    default, collapsed flamegraph stacks with ``--flame``), or render an
    existing trace file — e.g. a batch's merged ``fleet.trace.jsonl`` —
    with ``--from``."""
    from repro.obs.export import (
        collapsed_stacks,
        events_to_span,
        to_jsonl,
        validate_jsonl,
    )

    if args.from_file:
        try:
            events = validate_jsonl(Path(args.from_file).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{args.from_file}: {exc}")
        root = events_to_span(events)
    else:
        if not args.target:
            raise SystemExit("trace needs a target (or --from FILE)")
        from repro import Extractocol
        from repro.obs.tracer import Tracer

        apk, config = _load(args.target)
        config.workers = args.workers
        config.executor = args.executor
        tracer = Tracer()
        Extractocol(config, tracer=tracer).analyze(apk)
        root = tracer.root
    if args.flame:
        text = collapsed_stacks(root)
    else:
        text = to_jsonl(root, timings=args.timings)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_explain(args) -> int:
    """Explain where a signature field comes from: the chain of concrete
    statements from the producing constant to the demarcation point."""
    from repro.obs.provenance import explain

    apk, config = _load(args.target)
    try:
        result = explain(apk, config, request=args.request, field=args.field)
    except LookupError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.describe())
    return 0


def cmd_fuzz(args) -> int:
    from repro.corpus import get_spec
    from repro.runtime import AutoUiFuzzer, ManualUiFuzzer

    spec = get_spec(args.target)
    fuzzer = ManualUiFuzzer() if args.mode == "manual" else AutoUiFuzzer()
    result = fuzzer.fuzz(spec.build_apk(), spec.build_network())
    print(f"{args.mode} fuzzing of {spec.name}: {len(result.trace)} transactions")
    for captured in result.trace:
        print(f"  {captured}")
    for name, reason in result.skipped:
        print(f"  [skipped] {name}: {reason}")
    return 0


def cmd_export(args) -> int:
    from repro.apk.loader import save_apk
    from repro.corpus import build_app

    path = save_apk(build_app(args.target), args.output)
    print(f"wrote {path}")
    return 0


def cmd_eval(args) -> int:
    from repro import evalx

    if args.workers != 1:
        # warm the per-app cache with a parallel sweep across apps; the
        # renderers below then hit the cache
        evalx.evaluate_corpus(app_workers=args.workers)
    what = args.what
    if what == "table1":
        print(evalx.render_table1())
    elif what == "table2":
        print(evalx.render_table2())
    elif what == "figures":
        print(evalx.render_figures("open"))
        print(evalx.render_figures("closed"))
    elif what == "casestudies":
        print(evalx.table3())
        print()
        print(evalx.render_table4())
        print()
        print(evalx.render_table5())
        print()
        print(evalx.render_table6())
    elif what == "drift":
        # hand-written lineages always; a synthesized population's known-
        # drift lineages ride along when --corpus / $REPRO_CORPUS is set
        print(evalx.render_drift_table(args.corpus))
    elif what == "synth":
        print(evalx.render_synth_table(args.corpus or "synth:all*35@7"))
    if args.verbose:
        # phase-timing profile of every app the render above evaluated —
        # served from the evaluation cache (analysis_workers=1, same key
        # the renderers use), no re-analysis
        print()
        print(evalx.render_phase_table())
    return 0


def cmd_diff(args) -> int:
    """Protocol-evolution analysis between two app versions.

    Exit code contract (for CI gates): ``1`` when the diff contains a
    breaking change, ``0`` otherwise — including the self-diff and pure
    additions.  Resolution failures exit 2 via :class:`SystemExit`.
    """
    from repro.diff import diff_targets, render_markdown
    from repro.service.store import ResultStore, canonical_json

    store = None
    store_path = Path(args.store).expanduser()
    if args.latest or (store_path / "objects").exists():
        store = ResultStore(store_path)

    if args.latest:
        entries = [
            e for e in store.list_entries() if e["app"] == args.latest
        ]
        if len(entries) < 2:
            raise SystemExit(
                f"store has {len(entries)} report(s) for {args.latest!r}; "
                f"need at least two versions to diff "
                f"(populate with 'repro batch')"
            )
        old_target, new_target = entries[-2]["key"], entries[-1]["key"]
    else:
        if not args.old or not args.new:
            raise SystemExit("need two targets (or --latest APP)")
        old_target, new_target = args.old, args.new

    try:
        diff = diff_targets(
            old_target, new_target, store=store, workers=args.workers
        )
    except LookupError as exc:
        raise SystemExit(str(exc))

    if args.json:
        print(canonical_json(diff.to_dict()))
    elif args.markdown:
        print(render_markdown(diff), end="")
    else:
        print(diff.summary())
    return 1 if diff.breaking else 0


def _default_store() -> str:
    import os

    return os.environ.get("REPRO_STORE", "~/.cache/repro/store")


def cmd_batch(args) -> int:
    import time

    from repro.obs.fleet import BatchProgress, run_telemetry_dir
    from repro.obs.ledger import RunLedger, RunRecord, new_run_id
    from repro.perf.parallel import resolve_executor, resolve_workers
    from repro.service import JobScheduler, ResultStore

    targets = list(args.targets)
    if args.corpus:
        # the scheduler expands population specs itself; hand it through
        targets.append(args.corpus)
    if not targets:
        from repro.corpus import app_keys

        targets = app_keys()
    label = " ".join(targets) if len(targets) <= 4 else (
        f"{targets[0]} ... ({len(targets)} targets)"
    )

    store = ResultStore(Path(args.store).expanduser())
    scheduler = JobScheduler(
        store,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        executor=args.executor,
    )
    run_id = new_run_id()
    telemetry_dir = None
    if not args.no_telemetry:
        telemetry_dir = run_telemetry_dir(store.root, run_id, create=True)
    progress = None
    if args.progress:
        progress = BatchProgress(len(targets), run_dir=telemetry_dir)
    out_meta: dict = {}
    started_unix = time.time()
    t0 = time.perf_counter()
    try:
        try:
            records = scheduler.run_batch(
                targets,
                run_id=run_id,
                telemetry_dir=telemetry_dir,
                progress=progress,
                out_meta=out_meta,
            )
        except LookupError as exc:
            raise SystemExit(str(exc))
    finally:
        scheduler.shutdown(drain=True)
    wall = time.perf_counter() - t0

    analyses = scheduler.metrics.counter("analyses_run").value
    failed = [r["target"] for r in records if r["status"] != "done"]
    hits = sum(1 for r in records if r["cache_hit"])

    if not args.no_ledger:
        ledger = RunLedger(store.root)
        ledger.append(
            RunRecord.from_batch(
                run_id=run_id,
                label=label,
                records=records,
                started_unix=started_unix,
                wall_s=round(wall, 4),
                executor=resolve_executor(args.executor),
                workers=resolve_workers(args.workers),
                work_steals=scheduler.metrics.counter("work_steals").value,
                warnings=out_meta.get("fallback_reasons") or [],
                telemetry_dir=(
                    str(telemetry_dir) if telemetry_dir is not None else None
                ),
                fleet_trace=out_meta.get("fleet_trace"),
            )
        )

    if args.json:
        print(json.dumps({
            "run_id": run_id,
            "jobs": records,
            "cache_hits": hits,
            "analyses_run": analyses,
            "failed": len(failed),
            "store": store.stats(),
            "telemetry_dir": (
                str(telemetry_dir) if telemetry_dir is not None else None
            ),
            "fleet_trace": out_meta.get("fleet_trace"),
        }, indent=2, sort_keys=True))
        return 1 if failed else 0

    print(f"{'target':16s} {'status':8s} {'cache':6s} {'txns':>5s} {'ms':>8s}")
    for record in records:
        key = record.get("result_key")
        envelope = store.load(key) if key else None
        txns = (
            str(len(envelope["report"]["transactions"]))
            if envelope is not None
            else "-"
        )
        seconds = record.get("seconds")
        ms = f"{seconds * 1000:.1f}" if seconds is not None else "-"
        cache = "hit" if record["cache_hit"] else "miss"
        print(f"{record['target']:16s} {record['status']:8s} {cache:6s} "
              f"{txns:>5s} {ms:>8s}")
        if record.get("error"):
            print(f"  error: {record['error']}")
    print()
    print(
        f"{len(records)} jobs: {len(records) - len(failed)} done "
        f"({hits} cached), {len(failed)} failed; "
        f"analyses run: {analyses}; store: {store.stats()['entries']} entries"
    )
    if not args.no_ledger:
        print(f"run {run_id} recorded; inspect with: repro runs show {run_id}")
    return 1 if failed else 0


def cmd_runs(args) -> int:
    """Browse the run ledger (``repro runs list`` / ``repro runs show``)."""
    from repro.obs.ledger import RunLedger, render_run, render_runs_table

    ledger = RunLedger(Path(args.store).expanduser())
    if args.action == "list":
        records = ledger.tail(args.limit)
        if args.json:
            print(json.dumps(records, indent=2, sort_keys=True))
        elif not records:
            print(f"no runs recorded in {ledger.path}")
        else:
            print(render_runs_table(records))
        return 0
    record = ledger.get(args.run)
    if record is None:
        raise SystemExit(
            f"no run {args.run!r} in {ledger.path} "
            f"(try: repro runs list --store {args.store})"
        )
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(render_run(record))
    return 0


def cmd_index(args) -> int:
    """Build or refresh the fleet search index over a result store."""
    from repro.fleetindex.index import build_index
    from repro.service.store import ResultStore

    store = ResultStore(Path(args.store).expanduser())
    stats = build_index(
        store,
        rebuild=args.rebuild,
        executor=args.executor,
        workers=args.workers,
    )
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        mode = "rebuilt" if stats["rebuilt"] else "updated"
        print(
            f"index {mode}: {stats['docs']} reports / {stats['apps']} apps, "
            f"{stats['terms']} terms, {stats['postings']} postings "
            f"({stats['folded']} folded) in {store.root}/index"
        )
    return 0


def cmd_search(args) -> int:
    """Query the fleet index (``repro search host:api.reddit.com``)."""
    from repro.fleetindex.index import FleetIndex
    from repro.fleetindex.query import QueryError, run_search
    from repro.service.store import ResultStore

    store = ResultStore(Path(args.store).expanduser())
    index = FleetIndex(store).refresh()
    try:
        result = run_search(
            index,
            " ".join(args.query),
            limit=args.limit,
            cursor=args.cursor,
        )
    except QueryError as exc:
        raise SystemExit(f"bad query: {exc}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result["total"] else 1

    print(f"{result['total']} hit(s) for {result['query']!r} "
          f"across {len(result['apps'])} app(s)")
    for hit in result["hits"]:
        score = f"  [{hit['score']:.2f}]" if "score" in hit else ""
        print(f"  {hit['app']}  txn{hit['txn']}{score}  {hit['label']}")
        print(f"    key: {hit['key']}")
    if result["next_cursor"]:
        print(f"more: repro search {' '.join(args.query)} "
              f"--cursor {result['next_cursor']}")
    return 0 if result["total"] else 1


def cmd_mcp(args) -> int:
    """Serve the fleet catalog over stdio JSON-RPC (MCP tool shape)."""
    from repro.fleetindex.mcp import serve
    from repro.service.store import ResultStore

    return serve(ResultStore(Path(args.store).expanduser()))


def cmd_bench_check(args) -> int:
    """Gate on performance regressions against checked-in BENCH_*.json."""
    from repro.obs.benchcheck import (
        bench_kind,
        candidate_from_run,
        compare_benches,
        fresh_candidate,
        load_bench,
        render_check,
    )

    baselines = list(args.baselines)
    if not baselines:
        baselines = [
            str(p)
            for p in (
                Path("BENCH_batch_scale.json"),
                Path("BENCH_corpus_scale.json"),
                Path("BENCH_incremental.json"),
                Path("BENCH_pipeline.json"),
                Path("BENCH_search.json"),
            )
            if p.exists()
        ]
    if not baselines:
        raise SystemExit(
            "no baseline given and no BENCH_*.json found in the current "
            "directory"
        )

    results = []
    skipped = []
    for path in baselines:
        try:
            baseline = load_bench(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
        kind = bench_kind(baseline)
        if args.candidate:
            candidate = load_bench(args.candidate)
        elif args.run:
            from repro.obs.ledger import RunLedger

            record = RunLedger(Path(args.store).expanduser()).get(args.run)
            if record is None:
                raise SystemExit(f"no run {args.run!r} in the ledger")
            candidate = candidate_from_run(record)
        else:
            # fresh measurement; batch_scale, incremental and search
            # define one
            if kind == "incremental":
                from repro.obs.benchcheck import fresh_incremental_candidate

                candidate = fresh_incremental_candidate(baseline)
            elif kind == "search":
                from repro.obs.benchcheck import fresh_search_candidate

                candidate = fresh_search_candidate(baseline)
            elif kind != "batch_scale":
                skipped.append(f"{path}: no fresh-run source for {kind!r} "
                               f"benches; pass --candidate or --run")
                continue
            else:
                workers = args.fresh_workers or min(
                    int(w) for w in baseline.get("by_workers", {"1": 0})
                )
                candidate = fresh_candidate(baseline, workers=workers)
        results.append(
            compare_benches(
                baseline,
                candidate,
                bench_name=str(path),
                threshold=args.threshold,
            )
        )

    if args.json:
        print(json.dumps(
            {
                "ok": all(r.ok for r in results),
                "results": [r.to_dict() for r in results],
                "skipped": skipped,
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for result in results:
            print(render_check(result))
        for note in skipped:
            print(f"(skipped) {note}")
    regressed = [r for r in results if not r.ok]
    if regressed and args.warn_only:
        print(
            f"WARN-ONLY: {len(regressed)} bench(es) regressed beyond "
            f"{args.threshold:.0%} but exit is forced to 0",
            file=sys.stderr,
        )
        return 0
    return 1 if regressed else 0


def cmd_serve(args) -> int:
    from repro.service.api import AnalysisService

    service = AnalysisService(
        Path(args.store).expanduser(),
        host=args.host,
        port=args.port,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(f"repro service listening on {service.url} "
          f"(store: {service.store.root})")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining and shutting down")
        service.stop(drain=True)
    return 0


def __getattr__(name: str):
    """Backwards-compat: ``report_to_dict`` moved to ``repro.core.report``;
    keep the old import path alive without paying the import at startup."""
    if name == "report_to_dict":
        from repro.core.report import report_to_dict

        return report_to_dict
    raise AttributeError(f"module 'repro.cli' has no attribute {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Extractocol (CoNEXT 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser(
        "corpus", help="list corpus apps / compile synthetic populations"
    )
    p_corpus.add_argument("--kind", choices=["open", "closed"], default=None)
    p_corpus.add_argument("--synth", metavar="SPEC", default=None,
                          help="also list the apps of a synthesized "
                               "population (synth:<families>*<scale>"
                               "[@<seed>])")
    p_corpus.set_defaults(fn=cmd_corpus)
    corpus_sub = p_corpus.add_subparsers(dest="corpus_cmd")
    p_synth = corpus_sub.add_parser(
        "synth",
        help="compile a dimension-crossed synthetic population "
             "(deterministic, seeded, with ground truth and lineages)",
    )
    p_synth.add_argument("spec", nargs="?", default=None,
                         help="population spec synth:<families>*<scale>"
                              "[@<seed>] (overrides the flags below)")
    p_synth.add_argument("--families", default="all", metavar="F1,F2",
                         help="comma-separated family names, or 'all'")
    p_synth.add_argument("--scale", type=int, default=100, metavar="N",
                         help="total apps across the selected families")
    p_synth.add_argument("--seed", type=int, default=0, metavar="S",
                         help="population seed (same seed = byte-identical "
                              "apps; different seed = distinct population)")
    p_synth.add_argument("--export", metavar="DIR", default=None,
                         help="write every app as DIR/<key>.sapk")
    p_synth.add_argument("--json", action="store_true",
                         help="full manifest (per-app grid coordinates, "
                              "truth totals, lineage labels, digest)")
    p_synth.set_defaults(fn=cmd_corpus_synth)

    p_analyze = sub.add_parser("analyze", help="analyze an app")
    p_analyze.add_argument("target",
                           help="corpus key, lineage label (app@vN), or "
                                ".sapk path")
    p_analyze.add_argument("--json", action="store_true")
    p_analyze.add_argument("--mode",
                           choices=["full", "targeted", "incremental"],
                           default="full",
                           help="analysis mode: full = whole-program "
                                "reference pipeline; targeted = demand-"
                                "driven slicing seeded by a bytecode "
                                "search; incremental = replay cached DP "
                                "slices of unchanged methods from the "
                                "store's manifest (all three produce "
                                "byte-identical reports)")
    p_analyze.add_argument("--store", metavar="DIR", default=None,
                           help="result store holding/receiving the "
                                "incremental manifest (cold runs write "
                                "one; --mode incremental reads the "
                                "previous version's back)")
    g_async = p_analyze.add_mutually_exclusive_group()
    g_async.add_argument("--async-heuristic", dest="async_heuristic",
                         action="store_true", default=None,
                         help="force-enable §3.4's async-event handling")
    g_async.add_argument("--no-async-heuristic", dest="async_heuristic",
                         action="store_false",
                         help="disable §3.4's async-event handling")
    p_analyze.add_argument("--workers", type=int, default=1, metavar="N",
                           help="slice demarcation points with N workers "
                                "(1 = serial reference engine, 0 = one per "
                                "CPU; >=2 enables the memoized parallel "
                                "engine)")
    p_analyze.add_argument("--executor",
                           choices=["auto", "serial", "thread", "process"],
                           default="auto",
                           help="executor backing parallel slicing (auto = "
                                "process where fork is available, else "
                                "thread; process = persistent worker pool, "
                                "falls back to threads when no pool can be "
                                "built)")
    p_analyze.add_argument("--trace", metavar="FILE", default=None,
                           help="write a JSONL pipeline trace to FILE")
    p_analyze.add_argument("--trace-timings", action="store_true",
                           help="include wall-clock seconds per span "
                                "(makes the trace run-specific)")
    p_analyze.add_argument("--ledger", metavar="STORE_DIR", default=None,
                           help="append this run to STORE_DIR's run ledger "
                                "(repro runs list/show)")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_lint = sub.add_parser(
        "lint", help="run the static lint suite (typecheck/dataflow/soundness)"
    )
    p_lint.add_argument("targets", nargs="*",
                        help="corpus keys or .sapk paths (default: whole corpus)")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every corpus app (the default when no "
                             "targets are given)")
    p_lint.add_argument("--analyze", action="store_true",
                        help="also run the full analysis and include the "
                             "post-analysis SIG0xx signature lints")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable per-app reports + totals")
    p_lint.add_argument("--jsonl", action="store_true",
                        help="schema-checked findings JSONL on stdout")
    p_lint.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppression file: known findings never fail "
                             "the run")
    p_lint.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record all current findings as the baseline "
                             "and exit 0")
    p_lint.add_argument("--corpus", metavar="SPEC",
                        default=os.environ.get("REPRO_CORPUS"),
                        help="also lint a synthesized population "
                             "(synth:<families>*<scale>[@<seed>]); "
                             "defaults to $REPRO_CORPUS when set")
    p_lint.set_defaults(fn=cmd_lint)

    p_trace = sub.add_parser(
        "trace", help="run one traced analysis and emit the trace"
    )
    p_trace.add_argument("target", nargs="?", default=None,
                         help="corpus key or .sapk path (omit with --from)")
    p_trace.add_argument("--from", dest="from_file", metavar="FILE",
                         default=None,
                         help="render an existing JSONL trace (e.g. a "
                              "batch's merged fleet.trace.jsonl) instead "
                              "of running an analysis")
    p_trace.add_argument("--flame", action="store_true",
                         help="collapsed flamegraph stacks (self-time in "
                              "microseconds) instead of JSONL")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                         help="write to FILE instead of stdout")
    p_trace.add_argument("--timings", action="store_true",
                         help="include wall-clock seconds in JSONL spans")
    p_trace.add_argument("--workers", type=int, default=1, metavar="N")
    p_trace.add_argument("--executor",
                         choices=["auto", "serial", "thread", "process"],
                         default="auto")
    p_trace.set_defaults(fn=cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="taint provenance: why is this field in the signature?",
    )
    p_explain.add_argument("target", help="corpus key or .sapk path")
    p_explain.add_argument(
        "request",
        help="transaction selector: a txn id or a 'METHOD uri' substring",
    )
    p_explain.add_argument(
        "field",
        help="'uri', 'body', 'header:<name>', or a literal fragment",
    )
    p_explain.add_argument("--json", action="store_true")
    p_explain.set_defaults(fn=cmd_explain)

    p_fuzz = sub.add_parser("fuzz", help="run a UI-fuzzing baseline")
    p_fuzz.add_argument("target")
    p_fuzz.add_argument("--mode", choices=["manual", "auto"], default="manual")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_export = sub.add_parser("export", help="save a corpus app as .sapk")
    p_export.add_argument("target")
    p_export.add_argument("output")
    p_export.set_defaults(fn=cmd_export)

    p_diff = sub.add_parser(
        "diff", help="protocol-evolution diff between two app versions"
    )
    p_diff.add_argument("old", nargs="?", default=None,
                        help="old version: corpus key, .sapk path, stored "
                             "result key, or lineage label (app@vN)")
    p_diff.add_argument("new", nargs="?", default=None,
                        help="new version (same target forms)")
    p_diff.add_argument("--latest", metavar="APP", default=None,
                        help="diff the two most recently stored reports "
                             "of APP instead of giving explicit targets")
    p_diff.add_argument("--store", default=_default_store(), metavar="DIR",
                        help="result store for key resolution and diff "
                             "caching (default: $REPRO_STORE or "
                             "~/.cache/repro/store)")
    p_diff.add_argument("--workers", type=int, default=1, metavar="N",
                        help="analysis workers when a target needs a "
                             "fresh analysis")
    g_fmt = p_diff.add_mutually_exclusive_group()
    g_fmt.add_argument("--json", action="store_true",
                       help="canonical JSON (byte-stable across reruns)")
    g_fmt.add_argument("--markdown", action="store_true",
                       help="GitHub-flavoured markdown report")
    p_diff.set_defaults(fn=cmd_diff)

    p_eval = sub.add_parser("eval", help="regenerate evaluation artefacts")
    p_eval.add_argument(
        "what",
        choices=["table1", "table2", "figures", "casestudies", "drift",
                 "synth"],
    )
    p_eval.add_argument("--corpus", metavar="SPEC",
                        default=os.environ.get("REPRO_CORPUS"),
                        help="synthesized population "
                             "(synth:<families>*<scale>[@<seed>]) for "
                             "'eval synth' (default synth:all*35@7) and "
                             "'eval drift'; defaults to $REPRO_CORPUS "
                             "when set")
    p_eval.add_argument("--workers", type=int, default=1, metavar="N",
                        help="evaluate corpus apps concurrently with N "
                             "workers before rendering")
    p_eval.add_argument("--verbose", action="store_true",
                        help="append a per-app phase-timing table")
    p_eval.set_defaults(fn=cmd_eval)

    p_batch = sub.add_parser(
        "batch", help="run targets through the scheduler + result store"
    )
    p_batch.add_argument("targets", nargs="*",
                         help="corpus keys, syn- keys, population specs "
                              "(synth:<families>*<scale>[@<seed>]) or .sapk "
                              "paths (default: whole corpus)")
    p_batch.add_argument("--corpus", metavar="SPEC", default=None,
                         help="add a synthesized population to the batch")
    p_batch.add_argument("--store", default=_default_store(), metavar="DIR",
                         help="result store root (default: $REPRO_STORE or "
                              "~/.cache/repro/store)")
    p_batch.add_argument("--workers", type=int, default=0, metavar="N",
                         help="scheduler workers (0 = one per CPU)")
    p_batch.add_argument("--executor",
                         choices=["auto", "serial", "thread", "process"],
                         default="auto",
                         help="batch engine: process (the default where "
                              "fork is available) shards targets across "
                              "analyzer worker processes with work "
                              "stealing; thread uses the in-process pool")
    p_batch.add_argument("--timeout", type=float, default=None, metavar="SEC",
                         help="per-job analysis deadline")
    p_batch.add_argument("--retries", type=int, default=1, metavar="N",
                         help="retries per job on analyzer exceptions")
    p_batch.add_argument("--json", action="store_true",
                         help="machine-readable batch summary")
    p_batch.add_argument("--progress", action="store_true",
                         help="live progress on stderr: throughput, ETA, "
                              "failures, and straggler flagging from the "
                              "worker heartbeats")
    p_batch.add_argument("--no-telemetry", action="store_true",
                         help="skip worker trace streams, heartbeats and "
                              "the merged fleet trace")
    p_batch.add_argument("--no-ledger", action="store_true",
                         help="skip the run-ledger entry")
    p_batch.set_defaults(fn=cmd_batch)

    p_runs = sub.add_parser(
        "runs", help="browse the run ledger (batch/serve/analyze history)"
    )
    runs_sub = p_runs.add_subparsers(dest="action", required=True)
    p_runs_list = runs_sub.add_parser("list", help="recent runs")
    p_runs_list.add_argument("--store", default=_default_store(),
                             metavar="DIR")
    p_runs_list.add_argument("-n", "--limit", type=int, default=20,
                             metavar="N", help="show the last N runs")
    p_runs_list.add_argument("--json", action="store_true")
    p_runs_list.set_defaults(fn=cmd_runs)
    p_runs_show = runs_sub.add_parser(
        "show", help="one run in full (failures, phases, telemetry paths)"
    )
    p_runs_show.add_argument("run", help="run id (prefixes accepted)")
    p_runs_show.add_argument("--store", default=_default_store(),
                             metavar="DIR")
    p_runs_show.add_argument("--json", action="store_true")
    p_runs_show.set_defaults(fn=cmd_runs)

    p_index = sub.add_parser(
        "index", help="build/refresh the fleet search index over a store"
    )
    p_index.add_argument("--store", default=_default_store(), metavar="DIR",
                         help="result store root (default: $REPRO_STORE or "
                              "~/.cache/repro/store)")
    p_index.add_argument("--rebuild", action="store_true",
                         help="re-extract every stored envelope instead of "
                              "folding pending deltas (same bytes either "
                              "way)")
    p_index.add_argument("--executor",
                         choices=["auto", "serial", "thread", "process"],
                         default="serial",
                         help="shard the full build across workers "
                              "(identical index bytes regardless)")
    p_index.add_argument("--workers", type=int, default=0, metavar="N",
                         help="build workers (0 = one per CPU)")
    p_index.add_argument("--json", action="store_true")
    p_index.set_defaults(fn=cmd_index)

    p_search = sub.add_parser(
        "search", help="query the fleet index (cross-app protocol search)"
    )
    p_search.add_argument("query", nargs="+",
                          help="host:<host> path:<segment|/full/path> "
                               "field:<dep-field> app:<app> "
                               "like:<app>/<txn-id> or free text; clauses "
                               "AND together")
    p_search.add_argument("--store", default=_default_store(), metavar="DIR")
    p_search.add_argument("--limit", type=int, default=None, metavar="N",
                          help="page size (default 50)")
    p_search.add_argument("--cursor", default=None, metavar="CURSOR",
                          help="opaque cursor from the previous page")
    p_search.add_argument("--json", action="store_true")
    p_search.set_defaults(fn=cmd_search)

    p_mcp = sub.add_parser(
        "mcp", help="MCP-style catalog server over stdio JSON-RPC "
                    "(list_collections / search / get_file)"
    )
    p_mcp.add_argument("--store", default=_default_store(), metavar="DIR")
    p_mcp.set_defaults(fn=cmd_mcp)

    p_bench = sub.add_parser(
        "bench", help="benchmark tooling (regression gating)"
    )
    bench_sub = p_bench.add_subparsers(dest="action", required=True)
    p_check = bench_sub.add_parser(
        "check",
        help="compare a candidate measurement against checked-in "
             "BENCH_*.json; exit 1 on regression",
    )
    p_check.add_argument("baselines", nargs="*",
                         help="baseline BENCH_*.json files (default: the "
                              "ones in the current directory)")
    p_check.add_argument("--candidate", metavar="FILE", default=None,
                         help="candidate bench JSON (same shape as the "
                              "baseline)")
    p_check.add_argument("--run", metavar="RUN_ID", default=None,
                         help="use a run-ledger entry as the candidate")
    p_check.add_argument("--store", default=_default_store(), metavar="DIR",
                         help="store whose ledger --run reads")
    p_check.add_argument("--fresh-workers", type=int, default=0, metavar="N",
                         help="worker count for the fresh measurement "
                              "(default: the baseline's smallest row)")
    p_check.add_argument("--threshold", type=float, default=0.25,
                         metavar="FRAC",
                         help="allowed degradation before failing "
                              "(default 0.25 = 25%%)")
    p_check.add_argument("--warn-only", action="store_true",
                         help="report regressions but exit 0 (CI smoke on "
                              "shared runners)")
    p_check.add_argument("--json", action="store_true")
    p_check.set_defaults(fn=cmd_bench_check)

    p_serve = sub.add_parser("serve", help="run the HTTP analysis service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8425)
    p_serve.add_argument("--store", default=_default_store(), metavar="DIR")
    p_serve.add_argument("--workers", type=int, default=0, metavar="N",
                         help="scheduler worker threads (0 = one per CPU)")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="SEC")
    p_serve.add_argument("--retries", type=int, default=1, metavar="N")
    p_serve.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro runs show ... | head`);
        # exit quietly the way grep/cat do instead of dumping a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
