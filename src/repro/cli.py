"""Command-line interface.

::

    python -m repro corpus                      # list corpus apps
    python -m repro analyze diode               # analyze a corpus app
    python -m repro analyze path/to/app.sapk    # analyze an .sapk bundle
    python -m repro fuzz diode --mode manual    # run a fuzzing baseline
    python -m repro export diode out.sapk       # save a corpus app to disk
    python -m repro eval table1|table2|figures|casestudies
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(target: str):
    """Resolve a corpus key or .sapk path into (Apk, AnalysisConfig)."""
    from repro import AnalysisConfig
    from repro.apk.loader import load_apk
    from repro.corpus import app_keys, get_spec

    if target in app_keys():
        spec = get_spec(target)
        return spec.build_apk(), AnalysisConfig(
            async_heuristic=(spec.kind == "closed"),
            scope_prefixes=spec.scope_prefixes,
        )
    path = Path(target)
    if path.exists():
        return load_apk(path), AnalysisConfig()
    raise SystemExit(
        f"'{target}' is neither a corpus app key nor an .sapk bundle; "
        f"known keys: {', '.join(app_keys())}"
    )


def cmd_corpus(args) -> int:
    from repro.corpus import app_keys, get_spec

    for key in app_keys(args.kind):
        spec = get_spec(key)
        print(f"{key:16s} {spec.kind:6s} {spec.protocol:8s} {spec.name}")
    return 0


def cmd_analyze(args) -> int:
    from repro import Extractocol

    apk, config = _load(args.target)
    if args.no_async_heuristic:
        config.async_heuristic = False
    if args.async_heuristic:
        config.async_heuristic = True
    config.workers = args.workers
    config.executor = args.executor
    report = Extractocol(config).analyze(apk)
    if args.json:
        print(json.dumps(report_to_dict(report), indent=2))
        return 0
    print(report.summary())
    print()
    for txn in report.transactions:
        print(f"#{txn.txn_id}")
        print("  " + txn.describe().replace("\n", "\n  "))
    for txn in report.unidentified:
        print(f"#{txn.txn_id} [unidentified] {txn.request.method} "
              f"{txn.request.uri_regex}")
    return 0


def cmd_fuzz(args) -> int:
    from repro.corpus import get_spec
    from repro.runtime import AutoUiFuzzer, ManualUiFuzzer

    spec = get_spec(args.target)
    fuzzer = ManualUiFuzzer() if args.mode == "manual" else AutoUiFuzzer()
    result = fuzzer.fuzz(spec.build_apk(), spec.build_network())
    print(f"{args.mode} fuzzing of {spec.name}: {len(result.trace)} transactions")
    for captured in result.trace:
        print(f"  {captured}")
    for name, reason in result.skipped:
        print(f"  [skipped] {name}: {reason}")
    return 0


def cmd_export(args) -> int:
    from repro.apk.loader import save_apk
    from repro.corpus import build_app

    path = save_apk(build_app(args.target), args.output)
    print(f"wrote {path}")
    return 0


def cmd_eval(args) -> int:
    from repro import evalx

    if args.workers != 1:
        # warm the per-app cache with a parallel sweep across apps; the
        # renderers below then hit the cache
        evalx.evaluate_corpus(app_workers=args.workers)
    what = args.what
    if what == "table1":
        print(evalx.render_table1())
    elif what == "table2":
        print(evalx.render_table2())
    elif what == "figures":
        print(evalx.render_figures("open"))
        print(evalx.render_figures("closed"))
    elif what == "casestudies":
        print(evalx.table3())
        print()
        print(evalx.render_table4())
        print()
        print(evalx.render_table5())
        print()
        print(evalx.render_table6())
    return 0


def report_to_dict(report) -> dict:
    """JSON-serialisable view of an AnalysisReport."""

    def txn_dict(txn) -> dict:
        return {
            "id": txn.txn_id,
            "method": txn.request.method,
            "uri_regex": txn.request.uri_regex,
            "headers": {k: str(v) for k, v in txn.request.headers},
            "body": str(txn.request.body) if txn.request.body is not None else None,
            "body_kind": txn.request.body_kind,
            "response_kind": txn.response.kind,
            "response_body": (
                str(txn.response.body) if txn.response.body is not None else None
            ),
            "consumers": sorted(txn.response.consumers),
            "depends_on": [str(d) for d in txn.depends_on],
            "dynamic_uri": txn.request.is_dynamic,
        }

    return {
        "app": report.app,
        "stats": report.stats().as_row(),
        "slice_fraction": report.slice_fraction,
        "demarcation_points": report.demarcation_points,
        "transactions": [txn_dict(t) for t in report.transactions],
        "unidentified": [txn_dict(t) for t in report.unidentified],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Extractocol (CoNEXT 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("corpus", help="list corpus apps")
    p_corpus.add_argument("--kind", choices=["open", "closed"], default=None)
    p_corpus.set_defaults(fn=cmd_corpus)

    p_analyze = sub.add_parser("analyze", help="analyze an app")
    p_analyze.add_argument("target", help="corpus key or .sapk path")
    p_analyze.add_argument("--json", action="store_true")
    p_analyze.add_argument("--no-async-heuristic", action="store_true",
                           help="disable §3.4's async-event handling")
    p_analyze.add_argument("--async-heuristic", action="store_true",
                           help="force-enable §3.4's async-event handling")
    p_analyze.add_argument("--workers", type=int, default=1, metavar="N",
                           help="slice demarcation points with N workers "
                                "(1 = serial reference engine, 0 = one per "
                                "CPU; >=2 enables the memoized parallel "
                                "engine)")
    p_analyze.add_argument("--executor", choices=["thread", "process"],
                           default="thread",
                           help="executor backing parallel slicing "
                                "(process = fork pool, falls back to "
                                "threads without fork support)")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_fuzz = sub.add_parser("fuzz", help="run a UI-fuzzing baseline")
    p_fuzz.add_argument("target")
    p_fuzz.add_argument("--mode", choices=["manual", "auto"], default="manual")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_export = sub.add_parser("export", help="save a corpus app as .sapk")
    p_export.add_argument("target")
    p_export.add_argument("output")
    p_export.set_defaults(fn=cmd_export)

    p_eval = sub.add_parser("eval", help="regenerate evaluation artefacts")
    p_eval.add_argument(
        "what", choices=["table1", "table2", "figures", "casestudies"]
    )
    p_eval.add_argument("--workers", type=int, default=1, metavar="N",
                        help="evaluate corpus apps concurrently with N "
                             "workers before rendering")
    p_eval.set_defaults(fn=cmd_eval)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
