#!/usr/bin/env python
"""End-to-end pipeline benchmark: serial reference engine vs the memoized
parallel engine, persisted as ``BENCH_pipeline.json``.

For every app the harness measures ``Extractocol.analyze`` wall time with
``workers=1`` (the serial reference engine — the seed's exact code path)
and ``workers=N`` (the ProgramIndex-backed engine with executor fan-out),
and asserts the two runs produce byte-identical reports.

Methodology:

* The APK is built fresh for every timed run (cold per-method caches) but
  the build itself is *outside* the timed region — we benchmark the
  analyzer, not the corpus generator.
* Serial and parallel runs are interleaved and the best of ``--repeats``
  is kept for each, which cancels slow drifts in host load.
* GC is disabled inside the timed region.

On a single-core host the executor cannot add true parallelism (the GIL
serialises CPU-bound threads), so the reported speedup measures the
memoized engine's algorithmic gains: shared per-method artifacts, bitmask
reachability, lazy def-use materialisation.  On multi-core hosts the
demarcation-point fan-out adds to that.

Usage::

    PYTHONPATH=src python scripts/bench_report.py
    PYTHONPATH=src python scripts/bench_report.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import AnalysisConfig  # noqa: E402
from repro.core.extractocol import Extractocol  # noqa: E402
from repro.core.report import report_to_dict  # noqa: E402
from repro.corpus import get_spec  # noqa: E402
from repro.obs.fleet import host_fingerprint  # noqa: E402
from repro.perf.parallel import resolve_executor, usable_cpus  # noqa: E402

DEFAULT_APPS = ["ted", "kayak", "pinterest", "wishlocal"]


def _config(spec, workers: int, executor: str = "auto") -> AnalysisConfig:
    return AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
        workers=workers,
        executor=executor,
    )


def _analyze(spec, workers: int, executor: str = "auto"):
    return Extractocol(_config(spec, workers, executor)).analyze(spec.build_apk())


def _timed_run(spec, workers: int, executor: str = "auto") -> float:
    apk = spec.build_apk()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        Extractocol(_config(spec, workers, executor)).analyze(apk)
        return time.perf_counter() - t0
    finally:
        gc.enable()


def bench_app(key: str, workers: int, repeats: int, executor: str) -> dict:
    spec = get_spec(key)
    serial_report = json.dumps(report_to_dict(_analyze(spec, 1)))
    parallel_report = json.dumps(
        report_to_dict(_analyze(spec, workers, executor))
    )
    identical = serial_report == parallel_report

    serial_best = parallel_best = None
    for _ in range(repeats):  # interleaved: host-load drift hits both sides
        ts = _timed_run(spec, 1)
        tp = _timed_run(spec, workers, executor)
        serial_best = ts if serial_best is None else min(serial_best, ts)
        parallel_best = tp if parallel_best is None else min(parallel_best, tp)
    return {
        "serial_s": round(serial_best, 4),
        "parallel_s": round(parallel_best, 4),
        "speedup": round(serial_best / parallel_best, 3),
        "identical_reports": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="*", default=None,
                        help=f"corpus apps to benchmark (default: {DEFAULT_APPS})")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--executor",
                        choices=["auto", "serial", "thread", "process"],
                        default="auto",
                        help="engine backing the parallel runs (auto = "
                             "process where fork is available)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: 2 small apps, 2 repeats")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless aggregate speedup >= X "
                             "(CI regression gate, e.g. 1.0 asserts the "
                             "parallel engine is not slower than serial)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_pipeline.json in repo root)")
    args = parser.parse_args(argv)

    apps = args.apps or (["ted", "kayak"] if args.quick else DEFAULT_APPS)
    repeats = 2 if args.quick and args.repeats == 5 else args.repeats
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    )

    per_app: dict[str, dict] = {}
    for key in apps:
        per_app[key] = bench_app(key, args.workers, repeats, args.executor)
        row = per_app[key]
        print(f"{key:12s} serial={row['serial_s']:.3f}s "
              f"parallel={row['parallel_s']:.3f}s speedup={row['speedup']:.2f} "
              f"identical={row['identical_reports']}")

    tot_s = sum(r["serial_s"] for r in per_app.values())
    tot_p = sum(r["parallel_s"] for r in per_app.values())
    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cpus": usable_cpus(),
            "host": host_fingerprint(),
            "workers": args.workers,
            "repeats": repeats,
            "executor": args.executor,
            "resolved_executor": resolve_executor(args.executor),
            "timed_region": "Extractocol.analyze (APK built outside timing)",
            "engines": {
                "serial": "workers=1 — reference engine, the seed code path",
                "parallel": f"workers={args.workers} "
                            f"executor={resolve_executor(args.executor)} — "
                            "ProgramIndex-memoized engine with executor "
                            "fan-out (fan-out clamped to usable_cpus)",
            },
        },
        "apps": per_app,
        "aggregate": {
            "serial_s": round(tot_s, 4),
            "parallel_s": round(tot_p, 4),
            "speedup": round(tot_s / tot_p, 3),
            "all_identical": all(r["identical_reports"] for r in per_app.values()),
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"aggregate speedup={report['aggregate']['speedup']:.2f} -> {out}")
    if not report["aggregate"]["all_identical"]:
        print("FAIL: parallel reports differ from serial", file=sys.stderr)
        return 1
    if (
        args.min_speedup is not None
        and report["aggregate"]["speedup"] < args.min_speedup
    ):
        print(
            f"FAIL: aggregate speedup {report['aggregate']['speedup']:.3f} "
            f"< required {args.min_speedup:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
