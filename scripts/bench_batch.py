#!/usr/bin/env python
"""Batch-scaling benchmark: the process-sharded batch engine at 1/2/4/8
workers, persisted as ``BENCH_batch_scale.json``.

For each worker count the harness runs one *cold* batch (fresh store) over
the target list through :func:`repro.service.shard.run_sharded_batch` and
records:

* **apps/sec** — targets divided by batch wall time (the fleet-throughput
  number the sharded engine exists to scale),
* **p50/p99 latency** — per-target wall seconds as measured inside the
  worker that analysed it (resolution + analysis + store write),
* **work steals** — how many targets were executed outside their home
  shard (the stealing path exercising under real skew).

Every run's stored reports are asserted byte-identical to the 1-worker
run's — scaling never changes results.

Honesty notes: the APK corpus is generated in-process, so workers rebuild
their targets from specs (that cost is inside the per-target latency, as
it is in production ``repro batch``).  ``meta.usable_cpus`` records the
cgroup-aware CPU budget of the generating host; scaling beyond it measures
scheduling overhead, not parallelism.

Usage::

    PYTHONPATH=src python scripts/bench_batch.py
    PYTHONPATH=src python scripts/bench_batch.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.fleet import host_fingerprint  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.perf.parallel import usable_cpus  # noqa: E402
from repro.service.shard import run_sharded_batch  # noqa: E402
from repro.service.store import ResultStore  # noqa: E402

QUICK_APPS = ["diode", "ted", "tzm", "wallabag"]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def bench_workers(
    targets: list[str], workers: int, repeats: int, start_method: str | None
) -> tuple[dict, dict[str, dict]]:
    """Best-of-``repeats`` cold batch at ``workers``; returns the result
    row plus the stored report payloads (for cross-run identity checks)."""
    best: dict | None = None
    reports: dict[str, dict] = {}
    for _ in range(repeats):
        root = Path(tempfile.mkdtemp(prefix=f"repro-bench-w{workers}-"))
        try:
            metrics = MetricsRegistry()
            t0 = time.perf_counter()
            records = run_sharded_batch(
                root,
                targets,
                workers=workers,
                start_method=start_method,
                metrics=metrics,
            )
            wall = time.perf_counter() - t0
            failed = [r.target for r in records if r.status != "done"]
            if failed:
                raise SystemExit(f"workers={workers}: failed {failed}")
            latencies = sorted(r.seconds for r in records)
            counters = metrics.to_dict()["counters"]
            row = {
                "wall_s": round(wall, 4),
                "apps_per_sec": round(len(targets) / wall, 3),
                "p50_s": round(percentile(latencies, 0.50), 4),
                "p99_s": round(percentile(latencies, 0.99), 4),
                "work_steals": counters.get("work_steals", 0),
                "analyses_run": counters.get("analyses_run", 0),
            }
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
                store = ResultStore(root)
                reports = {
                    key: store.load(key)["report"] for key in store.entries()
                }
        finally:
            shutil.rmtree(root, ignore_errors=True)
    assert best is not None
    return best, reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="*", default=None,
                        help="corpus apps to batch (default: whole corpus)")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts (default 1,2,4,8)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold batches per worker count; best kept")
    parser.add_argument("--start-method", default=None,
                        choices=["fork", "spawn"],
                        help="force a multiprocessing start method")
    parser.add_argument("--quick", action="store_true",
                        help=f"smoke mode: {QUICK_APPS}, 1 repeat")
    parser.add_argument("--min-scaling", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless best apps/sec >= X * "
                             "1-worker apps/sec (CI regression gate)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_batch_scale.json "
                             "in repo root)")
    args = parser.parse_args(argv)

    if args.apps:
        targets = args.apps
    elif args.quick:
        targets = QUICK_APPS
    else:
        from repro.corpus import app_keys

        targets = app_keys()
    repeats = 1 if args.quick and args.repeats == 3 else args.repeats
    worker_counts = [int(w) for w in str(args.workers).split(",")]
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_batch_scale.json"
    )

    rows: dict[str, dict] = {}
    baseline_reports: dict[str, dict] | None = None
    for workers in worker_counts:
        row, reports = bench_workers(
            targets, workers, repeats, args.start_method
        )
        if baseline_reports is None:
            baseline_reports = reports
        elif reports != baseline_reports:
            raise SystemExit(
                f"workers={workers}: stored reports differ from the "
                f"{worker_counts[0]}-worker run"
            )
        rows[str(workers)] = row
        print(f"workers={workers}: {row['apps_per_sec']:.2f} apps/s "
              f"wall={row['wall_s']:.2f}s p50={row['p50_s'] * 1000:.1f}ms "
              f"p99={row['p99_s'] * 1000:.1f}ms steals={row['work_steals']}")

    base = rows[str(worker_counts[0])]["apps_per_sec"]
    best = max(r["apps_per_sec"] for r in rows.values())
    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cpus": usable_cpus(),
            "host": host_fingerprint(),
            "targets": list(targets),
            "repeats": repeats,
            "start_method": args.start_method or "default",
            "engine": "repro.service.shard.run_sharded_batch — work-"
                      "stealing analyzer processes over one shared store",
            "timed_region": "whole cold batch (fresh store per run; "
                            "worker processes resolve + analyze + store)",
        },
        "by_workers": rows,
        "aggregate": {
            "baseline_apps_per_sec": base,
            "best_apps_per_sec": best,
            "scaling": round(best / base, 3) if base else 0.0,
            "identical_reports_across_worker_counts": True,
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"scaling (best/1-worker)={report['aggregate']['scaling']:.2f} "
          f"-> {out}")
    if args.min_scaling is not None and base and best / base < args.min_scaling:
        print(
            f"FAIL: scaling {best / base:.3f} < required {args.min_scaling:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
