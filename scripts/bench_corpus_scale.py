#!/usr/bin/env python
"""Corpus-scaling benchmark: generation throughput and analysis latency
as the corpus grows from the 34 hand-written apps to 100/500/1000
synthesized apps, persisted as ``BENCH_corpus_scale.json``.

For each corpus size the harness measures:

* **gen_apps_per_sec** — compiling every app spec to a built APK model
  (grid decode + IR emission), single process; the cost of materialising
  the population from its ``synth:all*N@<seed>`` spec,
* **apps/sec analyzed** — one cold sharded batch
  (:func:`repro.service.shard.run_sharded_batch`) over the population,
* **p50/p99 analysis latency** — per-target wall seconds measured inside
  the worker that analysed it (spec resolution + analysis + store write).

Size 34 is the hand-written corpus (the pre-synth baseline); larger sizes
are ``synth:all*N@<seed>`` populations whose apps carry full ground truth
and lineages.  Workers rebuild every target from its self-describing key,
so the per-target latency includes generation — as it does in production
``repro batch``.

Honesty note: ``meta.usable_cpus`` records the cgroup-aware CPU budget of
the generating host; on a single-core host the sharded batch measures
scheduling overhead, not parallelism.

Usage::

    PYTHONPATH=src python scripts/bench_corpus_scale.py
    PYTHONPATH=src python scripts/bench_corpus_scale.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.fleet import host_fingerprint  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.perf.parallel import usable_cpus  # noqa: E402
from repro.service.shard import run_sharded_batch  # noqa: E402


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def corpus_targets(size: int, seed: int) -> tuple[str, list[str]]:
    """The target list for one corpus size: 34 = hand-written corpus,
    anything else a ``synth:all*N@seed`` population."""
    if size == 34:
        from repro.corpus import app_keys

        return "hand-written corpus", app_keys()
    from repro.synth import parse_population

    spec = f"synth:all*{size}@{seed}"
    return spec, parse_population(spec).keys()


def bench_generation(targets: list[str]) -> dict:
    """Build every target's APK model once, cold, in this process."""
    from repro.corpus import get_spec
    from repro.synth.compile import synth_spec

    synth_spec.cache_clear()
    t0 = time.perf_counter()
    classes = 0
    for key in targets:
        apk = get_spec(key).build_apk()
        classes += len(apk.program.classes)
    wall = time.perf_counter() - t0
    return {
        "gen_wall_s": round(wall, 4),
        "gen_apps_per_sec": round(len(targets) / wall, 2),
        "classes": classes,
    }


def bench_analysis(targets: list[str], workers: int, repeats: int) -> dict:
    """Best-of-``repeats`` cold sharded batch over the population."""
    best: dict | None = None
    for _ in range(repeats):
        root = Path(tempfile.mkdtemp(prefix="repro-bench-scale-"))
        try:
            metrics = MetricsRegistry()
            t0 = time.perf_counter()
            records = run_sharded_batch(
                root, targets, workers=workers, metrics=metrics
            )
            wall = time.perf_counter() - t0
            failed = [r.target for r in records if r.status != "done"]
            if failed:
                raise SystemExit(
                    f"{len(failed)} target(s) failed, e.g. {failed[:3]}"
                )
            latencies = sorted(r.seconds for r in records)
            row = {
                "wall_s": round(wall, 4),
                "apps_per_sec": round(len(targets) / wall, 2),
                "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
                "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
            }
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        finally:
            shutil.rmtree(root, ignore_errors=True)
    assert best is not None
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="34,100,500,1000",
                        help="comma-separated corpus sizes (34 = the "
                             "hand-written corpus, others synthesized)")
    parser.add_argument("--seed", type=int, default=7,
                        help="population seed for the synthesized sizes")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="sharded-batch analyzer processes "
                             "(0 = one per usable CPU)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="cold batches per size; best kept")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: sizes 34,100, 1 repeat")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_corpus_scale.json "
                             "in repo root)")
    args = parser.parse_args(argv)

    sizes = [34, 100] if args.quick else [
        int(s) for s in str(args.sizes).split(",")
    ]
    repeats = 1 if args.quick else args.repeats
    workers = args.workers or usable_cpus()
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_corpus_scale.json"
    )

    rows: dict[str, dict] = {}
    for size in sizes:
        label, targets = corpus_targets(size, args.seed)
        if len(targets) != size:
            raise SystemExit(f"{label} resolved to {len(targets)} targets, "
                             f"expected {size}")
        gen = bench_generation(targets)
        ana = bench_analysis(targets, workers, repeats)
        rows[str(size)] = {"corpus": label, **gen, **ana}
        print(f"size={size:5d} ({label}): "
              f"gen {gen['gen_apps_per_sec']:.0f} apps/s, "
              f"analyze {ana['apps_per_sec']:.1f} apps/s "
              f"p50={ana['p50_ms']:.1f}ms p99={ana['p99_ms']:.1f}ms")

    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cpus": usable_cpus(),
            "host": host_fingerprint(),
            "workers": workers,
            "seed": args.seed,
            "repeats": repeats,
            "engine": "repro.synth grid compiler + "
                      "repro.service.shard.run_sharded_batch",
            "timed_region": "generation: cold spec->APK build in one "
                            "process; analysis: whole cold sharded batch "
                            "(workers resolve + analyze + store)",
        },
        "by_size": rows,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"-> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
