#!/usr/bin/env python
"""Fleet-search latency benchmark, persisted as ``BENCH_search.json``.

Builds a synthesized store (default ``synth:all*500@7`` — the 500-app
fleet), indexes it, and measures per-query-class latency against the
loaded index: one representative query per grammar class (``host:``,
``path:``, ``field:``, free text, a multi-clause AND, and a ``like:``
similarity probe), each run ``--repeats`` times.

Reported per class:

* **p50_ms / p99_ms** — wall milliseconds of :func:`run_search` alone
  (parse + posting intersection/scoring + sort + first page); index
  load is excluded, matching the service steady state where
  ``refresh()`` is a stat probe,
* **qps** — queries per second over the whole sample.

The derived query strings are baked into ``meta.queries``, so
``repro bench check BENCH_search.json`` re-runs exactly this workload
against a freshly rebuilt store (same spec, same queries) and gates on
p50/p99/qps drift.

Usage::

    PYTHONPATH=src python scripts/bench_search.py
    PYTHONPATH=src python scripts/bench_search.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.benchcheck import measure_search_bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="synth:all*500@7",
                        help="population spec for the benchmark store "
                             "(default synth:all*500@7)")
    parser.add_argument("--repeats", type=int, default=200, metavar="N",
                        help="measurements per query class (default 200)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="store-build workers (0 = one per CPU)")
    parser.add_argument("--quick", action="store_true",
                        help="small store + few repeats (CI smoke)")
    parser.add_argument("--out", default="BENCH_search.json", metavar="FILE")
    args = parser.parse_args()

    spec = "synth:all*50@7" if args.quick else args.spec
    repeats = 20 if args.quick else args.repeats

    bench = measure_search_bench(spec, workers=args.workers, repeats=repeats)
    bench["meta"]["generated_unix"] = int(time.time())

    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")

    index = bench["index"]
    print(f"store {spec}: {index['docs']} reports / {index['apps']} apps, "
          f"{index['terms']} terms, {index['postings']} postings "
          f"(built in {index['build_s']}s)")
    print(f"{'class':8s} {'hits':>6s} {'p50_ms':>8s} {'p99_ms':>8s} "
          f"{'qps':>9s}  query")
    for name, row in sorted(bench["by_query"].items()):
        print(f"{name:8s} {row['hits']:>6d} {row['p50_ms']:>8.3f} "
              f"{row['p99_ms']:>8.3f} {row['qps']:>9.1f}  {row['query']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
