#!/usr/bin/env python
"""Incremental-analysis benchmark: cold full runs vs manifest-warm
``--mode incremental`` runs across every corpus lineage version plus the
synthesized evolution population, persisted as ``BENCH_incremental.json``.

For each lineage version ``app@vN`` the harness measures (via
:func:`repro.obs.benchcheck.measure_incremental_row`):

* **cold_s** — a cold full analysis of vN,
* **warm_s** — vN re-analyzed in incremental mode against the manifest a
  full run of v(N-1) left in a fresh store (RenameMap composed in for the
  obfuscated tzm lineage),
* **reused / reanalyzed / dirty_methods** — the warm run's PhaseStats
  ``incremental`` counters,
* **identical** — the byte-identity contract: warm report == cold report.

The ``synth:evolution*45`` row aggregates the same measurement over every
known-drift lineage of the synthesized evolution family.

``meta.acceptance`` records the PR's quantitative target: corpus-level
reuse fraction >= 0.5 with every row byte-identical.  (Per-row floors are
impossible by construction — wallabag has exactly one endpoint and its v2
rewrites it, so its lone slice is legitimately dirty.)

Usage::

    PYTHONPATH=src python scripts/bench_incremental.py
    PYTHONPATH=src python scripts/bench_incremental.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.benchcheck import (  # noqa: E402
    measure_incremental_row,
    measure_incremental_synth,
)
from repro.obs.fleet import host_fingerprint  # noqa: E402

#: every non-base version of every hand-written corpus lineage
CORPUS_LABELS = (
    "reddinator@v2",
    "reddinator@v3",
    "wallabag@v2",
    "twister@v2",
    "tzm@v2",
)
SYNTH_SPEC = "synth:evolution*45@7"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="corpus lineages only, skip the synth sweep")
    parser.add_argument("--synth", default=SYNTH_SPEC,
                        help=f"synth population spec (default {SYNTH_SPEC})")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
    )

    rows: dict[str, dict] = {}
    for label in CORPUS_LABELS:
        rows[label] = row = measure_incremental_row(label)
        print(f"{label:15s}: cold {row['cold_s']*1e3:7.1f}ms "
              f"warm {row['warm_s']*1e3:7.1f}ms "
              f"speedup {row['speedup']:5.2f}x "
              f"reused {row['reused']}/{row['reused'] + row['reanalyzed']} "
              f"dirty_methods={row['dirty_methods']} "
              f"identical={row['identical']}")
    if not args.quick:
        rows[args.synth] = row = measure_incremental_synth(args.synth)
        print(f"{args.synth}: {row['pairs']} pairs, "
              f"speedup {row['speedup']:5.2f}x "
              f"reuse_fraction {row['reuse_fraction']:.2f} "
              f"identical={row['identical']}")

    # The acceptance floor is over the hand-written corpus lineages; the
    # synth evolution row is coverage (its single-endpoint apps dirty
    # their one slice by construction, capping reuse structurally).
    corpus_rows = [rows[label] for label in CORPUS_LABELS]
    reused = sum(r["reused"] for r in corpus_rows)
    total = reused + sum(r["reanalyzed"] for r in corpus_rows)
    aggregate = round(reused / total, 4) if total else 0.0
    identical = all(r["identical"] for r in rows.values())
    print(f"corpus reuse_fraction={aggregate:.2f} identical={identical}")

    report = {
        "meta": {
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "host": host_fingerprint(),
            "engine": "repro.obs.benchcheck.measure_incremental_row "
                      "(cold full run vs manifest-warm --mode incremental)",
            "timed_region": "whole analyze() call; warm store seeded by a "
                            "full run of the predecessor version",
            "acceptance": {
                "min_corpus_reuse_fraction": 0.5,
                "corpus_reuse_fraction": aggregate,
                "byte_identical": identical,
            },
        },
        "by_lineage": rows,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"-> {out}")
    if not identical or aggregate < 0.5:
        print("ACCEPTANCE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
