"""Shim so legacy editable installs work where the ``wheel`` package is
unavailable (offline environments): ``pip install -e . --no-use-pep517``."""

from setuptools import setup

setup()
