"""Regenerate Figures 6 and 7 (aggregate signature and keyword totals)."""

from __future__ import annotations

import pytest

from repro.evalx import FIGURE6, FIGURE7, figure6, figure7, render_figures
from repro.evalx.runner import evaluate_app
from repro.corpus import app_keys


@pytest.fixture(scope="module", autouse=True)
def warm():
    for key in app_keys():
        evaluate_app(key)
    yield


@pytest.mark.parametrize("kind", ["open", "closed"])
def test_fig6(benchmark, kind):
    result = benchmark(figure6, kind)
    print()
    print(render_figures(kind).split("Figure 7")[0])
    paper = FIGURE6[kind]
    print(f"  paper       : {paper}")
    if kind == "closed":
        e, m, a = result.extractocol, result.manual, result.third
        assert e.uris > m.uris > a.uris
    else:
        assert result.extractocol.response_bodies == result.third.response_bodies


@pytest.mark.parametrize("kind", ["open", "closed"])
def test_fig7(benchmark, kind):
    result = benchmark(figure7, kind)
    print()
    print("Figure 7" + render_figures(kind).split("Figure 7")[1])
    print(f"  paper       : {FIGURE7[kind]}")
    if kind == "open":
        # the traffic exposes response keywords the app never reads
        assert result.manual.response_keywords > result.extractocol.response_keywords
    else:
        assert result.extractocol.response_keywords > result.third.response_keywords
