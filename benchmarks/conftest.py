"""Benchmark fixtures: warm corpus/evaluation caches once per session so
pytest-benchmark timings measure the analysis, not corpus construction."""

from __future__ import annotations

import pytest

from repro.corpus import registry


@pytest.fixture(scope="session", autouse=True)
def warm_registry():
    registry()
    yield
