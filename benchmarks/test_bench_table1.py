"""Regenerate Table 1 (per-app signature counts per discovery method) and
benchmark the full-corpus pipeline runs that produce it.

Run with:  pytest benchmarks/test_bench_table1.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, get_spec
from repro.evalx import clear_cache, generate_table1, render_table1, row_for
from repro.runtime import AutoUiFuzzer, ManualUiFuzzer


def _run_app(key: str):
    spec = get_spec(key)
    cfg = AnalysisConfig(async_heuristic=(spec.kind == "closed"),
                         scope_prefixes=spec.scope_prefixes)
    report = Extractocol(cfg).analyze(spec.build_apk())
    manual = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    auto = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    return report, manual, auto


@pytest.mark.parametrize("key", ["diode", "radioreddit", "ted", "kayak",
                                 "linkedin", "pinterest"])
def test_table1_per_app(benchmark, key):
    """Benchmark the three discovery methods on representative apps."""
    report, manual, auto = benchmark(_run_app, key)
    assert report.transactions


def test_table1_full(benchmark):
    """Regenerate the whole table; prints the measured rows next to the
    paper's Extractocol column."""

    def run():
        clear_cache()
        return generate_table1()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table1(rows))
    print()
    print("paper comparison (Extractocol column, GET/POST):")
    for row in rows:
        paper = row_for(row.key)
        print(
            f"  {row.app[:22]:22s} measured GET={row.get.extractocol:3d} "
            f"POST={row.post.extractocol:3d} | paper GET={paper.get[0]:3d} "
            f"POST={paper.post[0]:3d}"
        )
    assert len(rows) == 34
