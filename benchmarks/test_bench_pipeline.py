"""§5.1 analysis-time characteristics.

The paper reports ~4 minutes per open-source app and 11-180 minutes for
closed-source apps on real APKs; our substrate is smaller, so only the
*relative* shape is expected to hold: closed-source (larger) apps take
longer, and analysis time grows with app size.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, build_app, get_spec


def _analyze(key: str):
    spec = get_spec(key)
    cfg = AnalysisConfig(async_heuristic=(spec.kind == "closed"),
                         scope_prefixes=spec.scope_prefixes)
    return Extractocol(cfg).analyze(spec.build_apk())


@pytest.mark.parametrize("key", ["blippex", "diode", "radioreddit"])
def test_pipeline_open(benchmark, key):
    report = benchmark(_analyze, key)
    assert report.transactions


@pytest.mark.parametrize("key", ["ted", "kayak", "pinterest", "wishlocal"])
def test_pipeline_closed(benchmark, key):
    report = benchmark(_analyze, key)
    assert report.transactions


def test_relative_timing_shape(benchmark):
    """Average closed-source analysis takes longer than open-source, as the
    paper's 4-minutes vs 11-180-minutes split suggests."""
    import time

    def run():
        samples = {}
        for key in ("blippex", "wallabag", "tzm", "pinterest", "wishlocal",
                    "geek"):
            t0 = time.perf_counter()
            _analyze(key)
            samples[key] = time.perf_counter() - t0
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    open_avg = (samples["blippex"] + samples["wallabag"] + samples["tzm"]) / 3
    closed_avg = (samples["pinterest"] + samples["wishlocal"] + samples["geek"]) / 3
    print()
    for key, t in samples.items():
        print(f"  {key:12s} {t * 1000:7.1f} ms")
    assert closed_avg > open_avg
