"""Figure 3 / §3.2 efficiency: network-aware slicing isolates a small
fraction of the code, and signature building scoped by slices beats the
unscoped ablation."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.cfg import build_callgraph
from repro.corpus import build_app, get_spec
from repro.slicing import NetworkSlicer


def test_fig3_diode_slice(benchmark):
    """Slice Diode and report the code fraction (paper: 6.3%)."""
    apk = build_app("diode")

    def run():
        cg = build_callgraph(apk.program)
        slicer = NetworkSlicer(apk.program, cg)
        return slicer.slice_all()

    report = benchmark(run)
    print()
    print(f"  slice fraction: {report.slice_fraction:.1%} "
          f"({len(report.sliced_statements)} of "
          f"{report.total_statements} statements; paper: 6.3%)")
    assert 0 < report.slice_fraction < 0.5


@pytest.mark.parametrize("key", ["diode", "ted", "kayak"])
def test_slicing_scales(benchmark, key):
    apk = build_app(key)

    def run():
        cg = build_callgraph(apk.program)
        return NetworkSlicer(apk.program, cg).slice_all()

    report = benchmark(run)
    assert report.slices


def test_ablation_slicing_scope(benchmark):
    """DESIGN.md ablation: signature building scoped to slices vs. the
    unscoped interpreter — same signatures either way."""
    spec = get_spec("diode")

    def run_both():
        scoped = Extractocol(AnalysisConfig(use_slicing=True)).analyze(
            spec.build_apk()
        )
        unscoped = Extractocol(AnalysisConfig(use_slicing=False)).analyze(
            spec.build_apk()
        )
        return scoped, unscoped

    scoped, unscoped = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert scoped.unique_uri_signatures() == unscoped.unique_uri_signatures()
