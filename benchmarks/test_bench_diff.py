"""Diff subsystem performance guards.

Two budgets:

1. The whole-corpus self-diff (analyze every app once, diff each report
   with itself) stays inside a hard wall-clock ceiling — the CI
   ``diff-smoke`` job runs exactly this sweep on every push, so it must
   never become the long pole.
2. The diff itself is cheap relative to analysis: once reports exist,
   re-diffing the whole corpus is pure dict crunching and must stay in
   interactive territory.  This pins the diff's own cost so a regression
   in matching (an accidental O(n²·m) score loop) is caught apart from
   analyzer drift.
"""

from __future__ import annotations

import time

from repro.core.extractocol import Extractocol
from repro.core.report import report_to_dict
from repro.corpus import app_keys
from repro.diff import diff_dicts
from repro.service import resolve_target

#: Whole sweep (34 analyses + 34 self-diffs).  Empirically a few seconds;
#: the ceiling absorbs cold caches and slow shared runners while still
#: catching a structural blow-up.
SWEEP_BUDGET_SECONDS = 120.0

#: Diff-only pass over all pre-analyzed reports.  Empirically tens of
#: milliseconds corpus-wide.
DIFF_ONLY_BUDGET_SECONDS = 5.0


def test_whole_corpus_self_diff_within_budget(benchmark):
    keys = app_keys()

    def run():
        t0 = time.perf_counter()
        dicts = []
        for key in keys:
            apk, config, _ = resolve_target(key)
            dicts.append(report_to_dict(Extractocol(config).analyze(apk)))
        analyze_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        verdicts = [diff_dicts(d, d).verdict for d in dicts]
        diff_seconds = time.perf_counter() - t1
        return analyze_seconds, diff_seconds, verdicts

    analyze_seconds, diff_seconds, verdicts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    total = analyze_seconds + diff_seconds
    print(f"\n  {len(verdicts)} apps: analyze {analyze_seconds:.2f} s, "
          f"self-diff {diff_seconds * 1000:.1f} ms")
    assert all(v == "identical" for v in verdicts)
    assert total <= SWEEP_BUDGET_SECONDS, (
        f"corpus self-diff sweep took {total:.1f} s "
        f"(budget {SWEEP_BUDGET_SECONDS:.0f} s)"
    )
    assert diff_seconds <= DIFF_ONLY_BUDGET_SECONDS, (
        f"diffing alone took {diff_seconds:.2f} s "
        f"(budget {DIFF_ONLY_BUDGET_SECONDS:.0f} s): matching should be "
        "dict crunching, not re-analysis"
    )
