"""Lint overhead guards.

Two budgets mirror ``test_bench_obs.py``:

1. The default ``lint_level="off"`` must cost exactly one branch in
   ``Extractocol.analyze`` — asserted as a 1.10x min-of-N ceiling against
   an identical engine, generous enough for scheduler noise on shared CI
   boxes while still catching an accidentally-eager lint pass (running
   the three pass families costs several times the analysis on these
   millisecond-scale apps, so a real regression blows way past 1.10x).
2. Linting the whole shipped corpus stays inside a hard wall-clock budget
   — the CI ``lint-corpus`` job runs it on every push, so it must remain
   cheap enough to never be the long pole.
"""

from __future__ import annotations

import time

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, build_app, get_spec
from repro.lint import lint_apk

ROUNDS = 7

#: Whole-corpus lint wall-clock ceiling (seconds).  Empirically ~1.5 s for
#: all 34 apps including corpus construction; 30 s absorbs cold caches and
#: slow shared runners while still catching an accidental quadratic pass.
CORPUS_BUDGET_SECONDS = 30.0


def _min_seconds(make_engine, apk, config) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        engine = make_engine(config)
        t0 = time.perf_counter()
        engine.analyze(apk)
        best = min(best, time.perf_counter() - t0)
    return best


def test_lint_off_costs_one_branch(benchmark):
    spec = get_spec("diode")
    apk = spec.build_apk()

    def run():
        baseline = _min_seconds(
            lambda c: Extractocol(c),
            apk,
            AnalysisConfig(scope_prefixes=spec.scope_prefixes),
        )
        gated = _min_seconds(
            lambda c: Extractocol(c),
            apk,
            AnalysisConfig(scope_prefixes=spec.scope_prefixes, lint_level="off"),
        )
        return baseline, gated

    baseline, gated = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = gated / baseline
    print(f"\n  baseline {baseline * 1000:.2f} ms  "
          f"lint_level=off {gated * 1000:.2f} ms  ratio {ratio:.3f}")
    assert ratio <= 1.10, (
        f"lint_level='off' costs {ratio:.2f}x (budget 1.10x): the gate is "
        "supposed to be a single branch"
    )


def test_whole_corpus_lint_within_budget(benchmark):
    keys = app_keys()

    def run():
        t0 = time.perf_counter()
        total_findings = 0
        for key in keys:
            total_findings += len(lint_apk(build_app(key)).findings)
        return time.perf_counter() - t0, total_findings

    elapsed, total_findings = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  linted {len(keys)} apps in {elapsed:.2f} s "
          f"({total_findings} findings)")
    assert elapsed <= CORPUS_BUDGET_SECONDS, (
        f"whole-corpus lint took {elapsed:.1f} s "
        f"(budget {CORPUS_BUDGET_SECONDS:.0f} s)"
    )
