"""Regenerate the case studies: Tables 3-6, Figures 1 and 8."""

from __future__ import annotations

import pytest

from repro.evalx import (
    evaluate_app,
    figure1_chain,
    figure8,
    render_table4,
    render_table5,
    render_table6,
    table3,
    table5,
    table6,
)


def test_table3_radioreddit(benchmark):
    text = benchmark(table3)
    print()
    print(text)
    assert "login" in text
    assert "media_player" in text
    # six transactions, the Table 3 inventory
    assert text.count("#") >= 6


def test_table4_ted(benchmark):
    text = benchmark(render_table4)
    print()
    print(text)
    assert "(D)" in text and "(S)" in text
    assert "media_player" in text


def test_table5_kayak(benchmark):
    rows = benchmark(table5)
    print()
    print(render_table5())
    assert sum(r.apis for r in rows) == 43


def test_table6_kayak(benchmark):
    sigs = benchmark(table6)
    print()
    print(render_table6())
    assert "action=registerandroid" in sigs["/k/authajax"]


def test_fig1_ted_prefetch_chain(benchmark):
    chain = benchmark(figure1_chain)
    print()
    for line in chain:
        print(" ", line[:110])
    assert any("media_player" in line for line in chain)


def test_fig8_rrd_keyword_match(benchmark):
    result = benchmark(figure8)
    print()
    print(f"  matched {result.matched_keywords}/{result.total_traffic_keywords} "
          f"keywords; unmatched: {result.unmatched}")
    print("  paper: 16/18 ('album' and 'score' are not processed by the app)")
    assert result.matched_keywords == 16
    assert result.total_traffic_keywords == 18
