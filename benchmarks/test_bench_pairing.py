"""Figure 5: disjoint-sub-slice pairing under a shared demarcation point."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from test_pairing import figure5_program  # noqa: E402

from repro.cfg import build_callgraph  # noqa: E402
from repro.deps import pair_slices  # noqa: E402
from repro.slicing import NetworkSlicer  # noqa: E402


def test_fig5_disjoint_pairing(benchmark):
    program = figure5_program()

    def run():
        cg = build_callgraph(program)
        slicer = NetworkSlicer(program, cg)
        dp_slices = slicer.slice_dp(slicer.scan()[0])
        return pair_slices(dp_slices.request, dp_slices.response, cg,
                           dp_method=dp_slices.dp.site.method_id)

    pairings = benchmark(run)
    flat = {(p.request_context, p.response_context) for p in pairings}
    print()
    for req, resp in sorted(flat):
        print(f"  {req}  <->  {resp}")
    # one-to-one: A with A, B with B, no cross pairs
    assert any("requestA" in a and "responseA" in b for a, b in flat)
    assert any("requestB" in a and "responseB" in b for a, b in flat)
    assert not any("requestA" in a and "responseB" in b for a, b in flat)
    assert not any("requestB" in a and "responseA" in b for a, b in flat)
