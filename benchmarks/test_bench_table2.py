"""Regenerate Table 2 (matched byte-count percentages Rk/Rv/Rn)."""

from __future__ import annotations

import pytest

from repro.corpus import app_keys
from repro.evalx import TABLE2, table2
from repro.evalx.runner import evaluate_app


@pytest.fixture(scope="module", autouse=True)
def warm():
    for key in app_keys():
        evaluate_app(key)
    yield


@pytest.mark.parametrize("kind", ["open", "closed"])
def test_table2(benchmark, kind):
    row = benchmark(table2, kind)
    rk, rv, rn = row.request
    sk, sv, sn = row.response
    print()
    print(f"  measured {kind}: request Rk/Rv/Rn = "
          f"{rk:.0%}/{rv:.0%}/{rn:.0%}, response = {sk:.0%}/{sv:.0%}/{sn:.0%}")
    print(f"  paper    {kind}: request = "
          f"{TABLE2[(kind, 'request')]}, response = {TABLE2[(kind, 'response')]}")
    # shape: requests nearly fully explained by key/value matches
    assert rk + rv > 0.75
    # shape: roughly half the response bytes are unobserved content
    assert 0.2 < sn < 0.8
