"""Service-layer throughput: batch scheduling cold (every job analysed)
vs warm (every job served from the content-addressed store).

The warm path is the serving-layer win: a fleet re-scan after a store
warm-up costs file reads, not analyses.
"""

from __future__ import annotations

import time

import pytest

from repro.service import JobScheduler, ResultStore

APPS = ("blippex", "diode", "tzm", "wallabag", "radioreddit", "weather")


def run_batch(store: ResultStore, workers: int = 4) -> JobScheduler:
    sched = JobScheduler(store, workers=workers)
    try:
        jobs = [sched.submit_target(k) for k in APPS]
        assert sched.wait(jobs, timeout=120)
        assert all(j.status.value == "done" for j in jobs)
    finally:
        sched.shutdown(drain=True)
    return sched


def test_batch_cold(benchmark, tmp_path_factory):
    def setup():
        root = tmp_path_factory.mktemp("cold")
        return (ResultStore(root),), {}

    def cold(store):
        sched = run_batch(store)
        assert sched.metrics.counter("analyses_run").value == len(APPS)

    benchmark.pedantic(cold, setup=setup, rounds=3, iterations=1)


def test_batch_warm(benchmark, tmp_path):
    store = ResultStore(tmp_path / "store")
    run_batch(store)  # warm-up pass populates the store

    def warm():
        sched = run_batch(store)
        assert sched.metrics.counter("analyses_run").value == 0

    benchmark.pedantic(warm, rounds=3, iterations=1)


def test_warm_is_faster_than_cold(tmp_path):
    store = ResultStore(tmp_path / "store")
    t0 = time.perf_counter()
    run_batch(store)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    sched = run_batch(store)
    warm = time.perf_counter() - t0
    assert sched.metrics.counter("analyses_run").value == 0
    assert warm < cold, f"warm batch ({warm:.3f}s) not faster than cold ({cold:.3f}s)"
