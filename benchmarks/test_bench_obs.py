"""Observability overhead guard.

The acceptance bar: with tracing disabled (the NULL_TRACER default), the
instrumented pipeline must cost no more than ~2% over an untraced run.
The null tracer is a falsy singleton, so every instrumentation site is a
single cheap branch; we assert a generous 1.10x ceiling on min-of-N
timings to keep the guard robust against scheduler noise on shared CI
boxes while still catching any real regression (an accidental eager
span allocation shows up as 1.5-3x on these millisecond-scale apps).
"""

from __future__ import annotations

import time

from repro import AnalysisConfig, Extractocol
from repro.corpus import get_spec
from repro.obs.tracer import NULL_TRACER, Tracer

ROUNDS = 7


def _min_seconds(make_engine, apk, config) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        engine = make_engine(config)
        t0 = time.perf_counter()
        engine.analyze(apk)
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_tracer_overhead_within_bounds(benchmark):
    spec = get_spec("diode")
    config = AnalysisConfig(scope_prefixes=spec.scope_prefixes)
    apk = spec.build_apk()

    def run():
        baseline = _min_seconds(lambda c: Extractocol(c), apk, config)
        instrumented = _min_seconds(
            lambda c: Extractocol(c, tracer=NULL_TRACER), apk, config
        )
        return baseline, instrumented

    baseline, instrumented = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = instrumented / baseline
    print(f"\n  baseline {baseline * 1000:.2f} ms  "
          f"instrumented {instrumented * 1000:.2f} ms  ratio {ratio:.3f}")
    assert ratio <= 1.10, (
        f"NULL_TRACER instrumentation costs {ratio:.2f}x (budget 1.10x)"
    )


def test_active_tracer_still_cheap(benchmark):
    """An enabled tracer allocates real spans but must stay within a small
    constant factor — the span tree is tiny relative to the analysis."""
    spec = get_spec("diode")
    config = AnalysisConfig(scope_prefixes=spec.scope_prefixes)
    apk = spec.build_apk()

    def run():
        off = _min_seconds(lambda c: Extractocol(c), apk, config)
        on = _min_seconds(lambda c: Extractocol(c, tracer=Tracer()), apk, config)
        return off, on

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    assert on / off <= 1.25, f"active tracing costs {on / off:.2f}x (budget 1.25x)"
