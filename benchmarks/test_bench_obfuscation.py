"""§5.1 obfuscation robustness: ProGuard-style renaming leaves the analysis
output unchanged, at comparable cost."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk import obfuscate
from repro.corpus import get_spec


@pytest.mark.parametrize("key", ["diode", "radioreddit", "ifixit"])
def test_obfuscated_analysis(benchmark, key):
    spec = get_spec(key)
    obfuscated = obfuscate(spec.build_apk()).apk

    report = benchmark(
        Extractocol(AnalysisConfig(async_heuristic=False)).analyze, obfuscated
    )
    plain = Extractocol(AnalysisConfig(async_heuristic=False)).analyze(
        spec.build_apk()
    )
    assert report.unique_uri_signatures() == plain.unique_uri_signatures()
    assert len(report.transactions) == len(plain.transactions)
