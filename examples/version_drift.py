#!/usr/bin/env python3
"""Protocol evolution across app releases (paper §6, "other applications").

A protocol description is only useful while it matches the app that ships.
When a new release changes the protocol — a renamed query key, a moved
endpoint, a login token that stops flowing into later requests — every
middlebox rule, replay script and dependency-aware tester built from the
old description silently misfires.

This example walks the generated reddinator lineage (three "releases"
derived from the corpus app) and diffs consecutive versions, showing how
the diff separates compatible drift from the breaking kind: in v3 the
vote endpoint caches the reddit ``modhash`` instead of deriving it from
the login response, so the login→vote dependency edge — the flow paper
Table 3 highlights — disappears from the protocol.

Run:  python examples/version_drift.py
"""

from __future__ import annotations

from repro.core.extractocol import Extractocol
from repro.corpus import build_version, lineage
from repro.diff import diff_reports


def analyze(label: str):
    built = build_version(label)
    return Extractocol(built.config).analyze(built.apk)


def main() -> None:
    versions = lineage("reddinator")
    print("reddinator release lineage:")
    for v in versions:
        print(f"  {v.label}: {v.description}")
    print()

    reports = {v.label: analyze(v.label) for v in versions}

    # v1 -> v2: additive drift.  Old tooling keeps working.
    d12 = diff_reports(reports["reddinator@v1"], reports["reddinator@v2"])
    print(f"v1 -> v2 verdict: {d12.verdict}")
    for change in d12.all_changes():
        print(f"  {change}")
    assert d12.verdict == "compatible" and not d12.breaking
    print()

    # v2 -> v3: the modhash flow is cut.  Any tool that replays vote
    # requests by first harvesting the login response is now broken.
    d23 = diff_reports(reports["reddinator@v2"], reports["reddinator@v3"])
    print(f"v2 -> v3 verdict: {d23.verdict}")
    for change in d23.breaking_changes():
        print(f"  BREAKING  {change}")
    assert d23.breaking
    kinds = [c.kind for c in d23.breaking_changes()]
    assert kinds == ["dependency-removed"], kinds
    (edge,) = [c.old for c in d23.breaking_changes()]
    assert edge == "txn3[$.json] -> txn4.body", edge
    print()
    print("the diff pinpoints the exact removed flow: "
          f"{edge} (login modhash -> vote body)")

    # A self-diff is the identity — the property CI leans on.
    d11 = diff_reports(reports["reddinator@v1"], reports["reddinator@v1"])
    assert d11.is_empty and d11.verdict == "identical"
    print("self-diff sanity: identical (exit code 0 in 'repro diff')")


if __name__ == "__main__":
    main()
