#!/usr/bin/env python3
"""Application-aware traffic classification (paper §2's QoS motivation).

"If the network knows that the response message is streamed into a media
player, rather than to a file, it can treat the traffic as such."

This example classifies a captured traffic trace using Extractocol's
signatures: each flow is labeled with the transaction it matches, the data
consumer (media player / UI / ...), and the provenance of dynamic request
fields — information a middlebox cannot get from port numbers or SNI.

Run:  python examples/traffic_audit.py
"""

from __future__ import annotations

from repro import AnalysisConfig, Extractocol
from repro.corpus import get_spec
from repro.runtime import ManualUiFuzzer
from repro.signature.matcher import transaction_matches


def classify(report, trace):
    rows = []
    for captured in trace:
        match = next(
            (
                t
                for t in report.transactions
                if transaction_matches(t, captured.request.method,
                                       captured.request.url,
                                       captured.request.body)
            ),
            None,
        )
        if match is None:
            rows.append((captured, None, "unclassified", ""))
            continue
        consumers = ",".join(sorted(match.response.consumers)) or "app logic"
        origins = ",".join(sorted(match.request.origins)) or "static"
        rows.append((captured, match, consumers, origins))
    return rows


def main() -> None:
    spec = get_spec("radioreddit")
    report = Extractocol(AnalysisConfig(async_heuristic=True)).analyze(
        spec.build_apk()
    )
    fuzz = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    print(f"captured {len(fuzz.trace)} flows from {spec.name}\n")

    rows = classify(report, fuzz.trace)
    print(f"{'flow':58s} {'txn':>4s} {'consumer':14s} origins")
    print("-" * 110)
    streaming = 0
    for captured, match, consumers, origins in rows:
        flow = f"{captured.request.method} {captured.request.url}"[:57]
        txn = f"#{match.txn_id}" if match else "-"
        print(f"{flow:58s} {txn:>4s} {consumers:14s} {origins[:40]}")
        if "media_player" in consumers:
            streaming += 1
    assert streaming >= 1
    print(f"\n{streaming} flow(s) feed the media player -> a QoS policy can "
          "prioritise them as latency-sensitive streaming traffic.")


if __name__ == "__main__":
    main()
