#!/usr/bin/env python3
"""Reverse-engineering a private REST API (paper §5.3).

The paper verifies Extractocol's output by writing a small Python client
from the recovered Kayak signatures: register a session (`/k/authajax`),
start a flight search, poll for fares — including the app-specific
``User-Agent`` header Kayak uses for access control.

This example does the same against the corpus Kayak server, driven purely
by the analysis output (no knowledge of the app internals).

Run:  python examples/kayak_replay.py
"""

from __future__ import annotations

import re

from repro import AnalysisConfig, Extractocol
from repro.corpus import get_spec
from repro.runtime.httpstack import HttpRequest


def recovered_signatures(report):
    """Pull the three flight-fare APIs out of the analysis report."""
    out = {}
    for txn in report.transactions:
        uri = txn.request.uri_regex.replace("\\", "")
        if uri.endswith("/k/authajax$") and txn.request.method == "POST":
            out["authajax"] = txn
        elif "flight/start" in uri:
            out["start"] = txn
        elif "flight/poll" in uri:
            out["poll"] = txn
    return out


def fill_wildcards(regex: str, values: dict[str, str]) -> str:
    """Instantiate a URI regex into a concrete URL: every ``key=<wildcard>``
    hole is filled from ``values`` (unknown keys get a placeholder)."""
    uri = regex.strip("^$").replace("\\", "")
    # replace value wildcards ([0-9]+, .*) after known keys
    def fill(match):
        key = match.group(1)
        return f"{key}={values.get(key, 'x')}"

    uri = re.sub(r"([\w.\-\[\]]+)=(?:\.\*|\[0-9\]\+|\(\?:[^)]*\))", fill, uri)
    return uri


def main() -> None:
    spec = get_spec("kayak")
    print("1. recovering the private API from the APK ...")
    report = Extractocol(
        AnalysisConfig(async_heuristic=True, scope_prefixes=("com.kayak",))
    ).analyze(spec.build_apk())
    sigs = recovered_signatures(report)
    ua_value = dict(sigs["authajax"].request.headers)["User-Agent"]
    from repro.signature.lang import Const

    ua = ua_value.text if isinstance(ua_value, Const) else str(ua_value)
    print(f"   {len(report.transactions)} APIs; app-specific header "
          f"User-Agent: {ua}\n")

    network = spec.build_network()
    headers = {"User-Agent": ua}

    print("2. POST /k/authajax  (session registration)")
    body_sig = sigs["authajax"].request.body_regex.replace("\\", "").strip("^$")
    print(f"   signature: {body_sig[:100]}")
    r1 = network.send(HttpRequest(
        "POST", "https://www.kayak.com/k/authajax", headers=headers,
        body="action=registerandroid&uuid=0000-aa&hash=h1&model=Pixel"
             "&platform=android&os=6.0&locale=en_US&tz=9",
    ))
    sid = r1.json()["sid"]
    print(f"   -> sid = {sid}\n")

    print("3. GET /api/search/V8/flight/start")
    start_url = fill_wildcards(
        sigs["start"].request.uri_regex,
        {"origin": "ICN", "destination": "SFO", "depart_date": "2016-12-12",
         "_sid_": sid},
    )
    print(f"   {start_url[:110]}")
    r2 = network.send(HttpRequest("GET", start_url, headers=headers))
    searchid = r2.json()["searchid"]
    print(f"   -> searchid = {searchid}\n")

    print("4. GET /api/search/V8/flight/poll")
    poll_url = fill_wildcards(
        sigs["poll"].request.uri_regex, {"searchid": searchid, "nc": "1"}
    )
    r3 = network.send(HttpRequest("GET", poll_url, headers=headers))
    fares = r3.json()["tripset"]
    for fare in fares:
        print(f"   {fare['airline']}: {fare['price']} ({fare['duration']})")

    print("\n5. the User-Agent header is load-bearing (access control):")
    r4 = network.send(HttpRequest("GET", poll_url))  # no header
    print(f"   without header -> HTTP {r4.status}")
    assert r4.status == 403
    assert fares, "fare retrieval failed"
    print("\nflight fares retrieved from signatures alone — §5.3 reproduced.")


if __name__ == "__main__":
    main()
