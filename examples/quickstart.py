#!/usr/bin/env python3
"""Quickstart: analyze an Android app binary and print its protocol behavior.

Extractocol takes only the APK as input and reconstructs every HTTP(S)
transaction the app can perform — request signatures, response formats,
and the dependencies between messages.

Run:  python examples/quickstart.py [app-key]
      (default app: diode, the open-source reddit client of paper Fig. 3)
"""

from __future__ import annotations

import sys

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, get_spec


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "diode"
    if key not in app_keys():
        raise SystemExit(f"unknown app {key!r}; try one of {app_keys()}")
    spec = get_spec(key)
    apk = spec.build_apk()
    print(f"Analyzing {spec.name} ({apk.package}) — "
          f"{apk.program.statement_count()} statements, "
          f"{len(apk.entrypoints)} entry points\n")

    config = AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
    )
    report = Extractocol(config).analyze(apk)

    print(report.summary())
    print("\nreconstructed HTTP transactions:")
    for txn in report.transactions:
        print(f"\n#{txn.txn_id}")
        print("  " + txn.describe().replace("\n", "\n  "))

    if report.unidentified:
        print("\nwildcard-only signatures (intent/multi-async construction):")
        for txn in report.unidentified:
            print(f"  {txn.request.method} {txn.request.uri_regex}")

    if report.dependencies:
        print("\ninter-transaction dependencies:")
        for dep in report.dependencies:
            print(f"  {dep}")


if __name__ == "__main__":
    main()
