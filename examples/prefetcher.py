#!/usr/bin/env python3
"""Application acceleration via dependency-driven prefetching (paper Fig. 1).

The paper's motivating application: knowing that TED's ``android_ad.json``
response carries the URL of the next request (and that *that* response
carries the ad video URL, which streams into the media player), a proxy can
prefetch the whole chain as soon as the first response passes through.

This example builds such a prefetcher from Extractocol's output alone:

1. analyze the TED APK → transactions + inter-transaction dependencies,
2. install a prefetching proxy that, whenever a response matches a
   transaction other requests depend on, extracts the dependent URLs and
   fetches them ahead of time,
3. replay the user's session and report the prefetch hit rate.

Run:  python examples/prefetcher.py
"""

from __future__ import annotations

import json

from repro import AnalysisConfig, Extractocol
from repro.corpus import get_spec
from repro.runtime import ManualUiFuzzer, Network
from repro.signature.matcher import transaction_matches


class PrefetchingProxy:
    """Sits on the network path; uses the dependency graph to prefetch."""

    def __init__(self, report, upstream: Network) -> None:
        self.report = report
        self.upstream = upstream
        self.cache: dict[str, object] = {}
        self.prefetched: list[str] = []
        self.hits: list[str] = []
        # dependency index: src transaction -> (response path, dependents)
        self.dependents: dict[int, list] = {}
        for txn in report.transactions:
            for dep in txn.depends_on:
                if dep.dst_field == "uri":
                    self.dependents.setdefault(dep.src_txn, []).append(dep)

    def send(self, request):
        if request.url in self.cache:
            self.hits.append(request.url)
            return self.cache.pop(request.url)
        response = self.upstream.send(request)
        self._maybe_prefetch(request, response)
        return response

    def _maybe_prefetch(self, request, response) -> None:
        match = next(
            (
                t
                for t in self.report.transactions
                if transaction_matches(t, request.method, request.url,
                                       request.body)
            ),
            None,
        )
        if match is None or match.txn_id not in self.dependents:
            return
        for dep in self.dependents[match.txn_id]:
            url = self._extract(response, dep.src_path)
            if url and url.startswith("http"):
                from repro.runtime.httpstack import HttpRequest

                self.cache[url] = self.upstream.send(
                    HttpRequest("GET", url)
                )
                self.prefetched.append(url)

    @staticmethod
    def _extract(response, path: str):
        """Walk a response:$.a.[].b path into the JSON body."""
        try:
            node = json.loads(response.body)
        except (ValueError, TypeError):
            return None
        for part in path.lstrip("$.").split("."):
            if not part:
                continue
            if part == "[]":
                if isinstance(node, list) and node:
                    node = node[0]
                else:
                    return None
            elif isinstance(node, dict):
                node = node.get(part)
            else:
                return None
        return node if isinstance(node, str) else None


def main() -> None:
    spec = get_spec("ted")
    print("1. analyzing the TED APK ...")
    report = Extractocol(AnalysisConfig(async_heuristic=True)).analyze(
        spec.build_apk()
    )
    chains = sum(len(t.depends_on) for t in report.transactions)
    print(f"   {len(report.transactions)} transactions, "
          f"{chains} dependency edges\n")

    print("2. dependency chains a prefetcher can exploit:")
    for txn in report.transactions:
        for dep in txn.depends_on:
            if dep.dst_field == "uri":
                print(f"   txn#{dep.src_txn} response[{dep.src_path}] "
                      f"-> txn#{dep.dst_txn} URI")
    print()

    print("3. replaying the app session through the prefetching proxy ...")
    upstream = spec.build_network()
    proxy = PrefetchingProxy(report, upstream)

    # route the app's traffic through the proxy
    class ProxiedNetwork(Network):
        def __init__(self):
            super().__init__(trace=upstream.trace)

        def send(self, request):
            return proxy.send(request)

    ManualUiFuzzer().fuzz(spec.build_apk(), ProxiedNetwork())
    print(f"   prefetched : {len(proxy.prefetched)} objects")
    for url in proxy.prefetched:
        print(f"     - {url}")
    print(f"   cache hits : {len(proxy.hits)} requests served ahead of time")
    for url in proxy.hits:
        print(f"     - {url}")
    assert proxy.hits, "prefetching should have produced at least one hit"
    print("\nthe ad query/video chain was served from cache — the Fig. 1 win.")


if __name__ == "__main__":
    main()
